//! Versioned binary checkpoints of the full machine state.
//!
//! A [`Snapshot`] captures everything [`Alewife`] and
//! [`ParallelAlewife`] evolve at run time — CPU task frames and cycle
//! ledgers, caches, directories with in-flight busy episodes,
//! controller transactions, full/empty memory, the network's event
//! heap and fault-plan state, scheduler bookkeeping, and every probe's
//! ring — as one self-describing byte string. The two schedulers share
//! one encoder over the identical field set, so a snapshot taken on
//! either restores into either: checkpoint on the sequential machine,
//! resume on the parallel one (or vice versa), and the continuation is
//! bit-exact for any worker count.
//!
//! The format (DESIGN.md §11) is a fixed header — magic `"APRL"`,
//! version byte, checkpoint cycle, the `Debug` rendering of the
//! [`MachineConfig`], a digest of the program image, the node count —
//! followed by a list of *sections*, each tagged with a kind byte and
//! node id and length-prefixed. Sectioning buys two things: a restore
//! can verify it is consuming exactly the state it expects, and
//! [`diff_snapshots`] can name the first component two snapshots
//! disagree on instead of reporting "bytes differ".
//!
//! Restores are *validated*, not trusted: config and program must
//! match the machine the snapshot is restored into, section tags must
//! arrive in canonical order, and every section must consume its
//! payload exactly. A failed restore leaves the machine in an
//! unspecified state — rebuild it before retrying.

use crate::alewife::Node;
use crate::alewife::{Alewife, Env};
use crate::config::MachineConfig;
use crate::parallel::ParallelAlewife;
use crate::watchdog::Watchdog;
use april_core::program::Program;
use april_core::snapshot::{encode_cpu, restore_cpu};
use april_mem::femem::FeMemory;
use april_mem::snapshot::{
    decode_msg, encode_ctl, encode_dir, encode_femem, encode_msg, restore_ctl, restore_dir,
    restore_femem,
};
use april_net::network::Network;
use april_obs::{Probe, QHist};
use april_util::wire::{digest64, ByteReader, ByteWriter, WireError};
use std::fmt;

/// The four-byte magic prefix of every snapshot.
pub const MAGIC: [u8; 4] = *b"APRL";
/// The format version this build writes and the only one it reads.
/// Version 2 extended the network section with fail-stop fault state,
/// quarantine sets, and the dead-letter log. Version 3 made the memory
/// section sparse (untouched 4 KiB chunks serialize as holes), added
/// coarse/broadcast sharer-set encodings for the sparse directory
/// kinds, and appended the directory overflow counter. Version 4 added
/// the per-edge-node open-loop traffic section (DESIGN.md §15).
pub const VERSION: u8 = 4;

/// Section kinds. Per-node sections (`CPU`..`IO`) carry the node id in
/// their tag; machine-wide sections use node id 0.
const SEC_CPU: u8 = 0;
const SEC_CTL: u8 = 1;
const SEC_DIR: u8 = 2;
const SEC_IO: u8 = 3;
const SEC_MEM: u8 = 4;
const SEC_NET: u8 = 5;
const SEC_SCHED: u8 = 6;
const SEC_WATCHDOG: u8 = 7;
const SEC_META: u8 = 8;
/// Per-edge-node open-loop traffic state (only nodes with an ingress
/// ring have one); follows the node's `IO` section. The injection
/// cursor is deliberately absent — it is derived from the arrival plan
/// and the restored clock.
const SEC_TRAFFIC: u8 = 9;

fn section_name(kind: u8) -> &'static str {
    match kind {
        SEC_CPU => "cpu",
        SEC_CTL => "ctl",
        SEC_DIR => "dir",
        SEC_IO => "io",
        SEC_MEM => "mem",
        SEC_NET => "net",
        SEC_SCHED => "sched",
        SEC_WATCHDOG => "watchdog",
        SEC_META => "meta",
        SEC_TRAFFIC => "traffic",
        _ => "unknown",
    }
}

/// Why a checkpoint or restore was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// This machine type does not implement checkpointing.
    Unsupported,
    /// The machine has recorded a fatal fault; a checkpoint of a
    /// faulted machine could not be resumed meaningfully.
    Faulted,
    /// The bytes do not start with the `"APRL"` magic.
    BadMagic,
    /// The snapshot was written by an unknown format version.
    Version(u8),
    /// The snapshot's machine configuration differs from the machine
    /// it is being restored into.
    ConfigMismatch,
    /// The snapshot's program digest differs from the loaded program.
    ProgramMismatch,
    /// The byte stream is structurally invalid.
    Corrupt(WireError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Unsupported => write!(f, "machine does not support checkpointing"),
            SnapshotError::Faulted => write!(f, "cannot checkpoint a faulted machine"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::Version(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::ConfigMismatch => {
                write!(f, "snapshot was taken on a differently configured machine")
            }
            SnapshotError::ProgramMismatch => {
                write!(f, "snapshot was taken with a different program image")
            }
            SnapshotError::Corrupt(e) => write!(f, "corrupt snapshot: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> SnapshotError {
        SnapshotError::Corrupt(e)
    }
}

/// Parsed header fields (borrowed from the snapshot's bytes).
struct Header<'a> {
    now: u64,
    cfg_debug: &'a str,
    prog_digest: u64,
    nodes: usize,
    sections: usize,
}

fn read_header<'a>(r: &mut ByteReader<'a>) -> Result<Header<'a>, SnapshotError> {
    let magic = r.bytes()?;
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(SnapshotError::Version(version));
    }
    Ok(Header {
        now: r.u64()?,
        cfg_debug: r.str()?,
        prog_digest: r.u64()?,
        nodes: r.usize()?,
        sections: r.usize()?,
    })
}

/// A complete machine checkpoint: an owned, versioned byte string.
///
/// Produced by [`Alewife::checkpoint`] / [`ParallelAlewife::checkpoint`]
/// (or the [`crate::Machine::checkpoint`] trait method) and consumed by
/// the matching `restore`. The bytes are self-contained — they can be
/// written to disk and reloaded with [`Snapshot::from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    bytes: Vec<u8>,
}

impl Snapshot {
    /// The raw encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Adopts `bytes` as a snapshot after validating the header and
    /// walking the section framing (payloads are validated at restore).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Snapshot, SnapshotError> {
        let snap = Snapshot { bytes };
        snap.walk_sections(|_, _, _| Ok(()))?;
        Ok(snap)
    }

    /// The cycle at which the checkpoint was taken.
    pub fn cycle(&self) -> u64 {
        let mut r = ByteReader::new(&self.bytes);
        read_header(&mut r).map(|h| h.now).unwrap_or(0)
    }

    /// The `Debug` rendering of the configuration the snapshot was
    /// taken under.
    pub fn config_debug(&self) -> Result<&str, SnapshotError> {
        let mut r = ByteReader::new(&self.bytes);
        Ok(read_header(&mut r)?.cfg_debug)
    }

    /// Walks the header and every section, handing `(kind, node,
    /// payload)` to `f` in file order.
    fn walk_sections<'a>(
        &'a self,
        mut f: impl FnMut(u8, u32, &'a [u8]) -> Result<(), SnapshotError>,
    ) -> Result<(), SnapshotError> {
        let mut r = ByteReader::new(&self.bytes);
        let h = read_header(&mut r)?;
        for _ in 0..h.sections {
            let kind = r.u8()?;
            let node = r.u32()?;
            let payload = r.bytes()?;
            f(kind, node, payload)?;
        }
        if !r.is_empty() {
            return Err(SnapshotError::Corrupt(WireError::Corrupt(
                "trailing bytes after last section",
            )));
        }
        Ok(())
    }
}

/// Names the first point at which two snapshots disagree, or `None` if
/// they are byte-identical. The answer is a human-readable label —
/// `"section cpu@3"`, `"header (cycle/config/program)"` — intended for
/// replay-divergence reports, not machine parsing.
pub fn diff_snapshots(a: &Snapshot, b: &Snapshot) -> Option<String> {
    if a.bytes == b.bytes {
        return None;
    }
    let collect = |s: &Snapshot| {
        let mut v: Vec<(u8, u32, Vec<u8>)> = Vec::new();
        s.walk_sections(|kind, node, payload| {
            v.push((kind, node, payload.to_vec()));
            Ok(())
        })
        .map(|_| v)
    };
    let (sa, sb) = match (collect(a), collect(b)) {
        (Ok(sa), Ok(sb)) => (sa, sb),
        _ => return Some("unparseable snapshot".to_string()),
    };
    for (x, y) in sa.iter().zip(&sb) {
        if x.0 != y.0 || x.1 != y.1 {
            return Some(format!(
                "section order: {}@{} vs {}@{}",
                section_name(x.0),
                x.1,
                section_name(y.0),
                y.1
            ));
        }
        if x.2 != y.2 {
            return Some(format!("section {}@{}", section_name(x.0), x.1));
        }
    }
    if sa.len() != sb.len() {
        return Some(format!("section count: {} vs {}", sa.len(), sb.len()));
    }
    Some("header (cycle/config/program)".to_string())
}

fn encode_env(env: &Env, w: &mut ByteWriter) {
    w.usize(env.src);
    encode_msg(&env.msg, w);
}

fn decode_env(r: &mut ByteReader<'_>) -> Result<Env, WireError> {
    Ok(Env {
        src: r.usize()?,
        msg: decode_msg(r)?,
    })
}

fn prog_digest(prog: &Program) -> u64 {
    digest64(format!("{prog:?}").as_bytes())
}

/// The configuration rendering snapshots embed and validate against.
/// The scheduler-selection knobs (`lockstep`, `workers`,
/// `window_override`) are normalized away: they do not affect machine
/// semantics — the bit-exact equivalence contract is precisely that —
/// so a checkpoint taken under one scheduler restores under any other
/// scheduler or worker count. The watchdog horizon is normalized for
/// the same reason: it is supervision policy, not machine state, and
/// the recovery layer backs it off between attempts while restoring
/// checkpoints taken under the original horizon.
fn semantic_config_debug(cfg: &MachineConfig) -> String {
    let mut c = *cfg;
    c.lockstep = false;
    c.workers = 1;
    c.window_override = 0;
    c.watchdog.horizon = 0;
    // The decode engine is cycle-exact with the interpreter and its
    // image is derived state: a checkpoint taken with it on restores
    // with it off, and vice versa.
    c.decode = false;
    format!("{c:?}")
}

/// Everything the two schedulers checkpoint, borrowed. Both machines
/// hand their fields to [`encode_machine`] through this view, which is
/// what guarantees their snapshots are interchangeable.
pub(crate) struct MachineView<'a> {
    pub nodes: &'a [Node],
    pub mem: &'a FeMemory,
    pub net: &'a Network<Env>,
    pub prog: &'a Program,
    pub cfg: &'a MachineConfig,
    pub ready_at: &'a [u64],
    pub halted_at: &'a [Option<u64>],
    pub now: u64,
    pub watchdog: &'a Watchdog,
    pub meta_probe: &'a Probe,
}

/// The same field set, mutable, for restores.
pub(crate) struct MachineViewMut<'a> {
    pub nodes: &'a mut [Node],
    pub mem: &'a mut FeMemory,
    pub net: &'a mut Network<Env>,
    pub prog: &'a Program,
    pub cfg: &'a MachineConfig,
    pub ready_at: &'a mut [u64],
    pub halted_at: &'a mut [Option<u64>],
    pub now: &'a mut u64,
    pub watchdog: &'a mut Watchdog,
    pub meta_probe: &'a mut Probe,
}

fn push_section(w: &mut ByteWriter, kind: u8, node: u32, payload: ByteWriter) {
    w.u8(kind);
    w.u32(node);
    w.bytes(&payload.finish());
}

pub(crate) fn encode_machine(v: MachineView<'_>) -> Snapshot {
    let n = v.nodes.len();
    let traffic_nodes = v.nodes.iter().filter(|nd| nd.traffic.is_some()).count();
    let mut w = ByteWriter::new();
    w.bytes(&MAGIC);
    w.u8(VERSION);
    w.u64(v.now);
    w.str(&semantic_config_debug(v.cfg));
    w.u64(prog_digest(v.prog));
    w.usize(n);
    w.usize(n * 4 + traffic_nodes + 5);

    for (i, node) in v.nodes.iter().enumerate() {
        let i = i as u32;
        let mut p = ByteWriter::new();
        encode_cpu(&node.cpu, &mut p);
        push_section(&mut w, SEC_CPU, i, p);
        let mut p = ByteWriter::new();
        encode_ctl(&node.ctl, &mut p);
        push_section(&mut w, SEC_CTL, i, p);
        let mut p = ByteWriter::new();
        encode_dir(&node.dir, &mut p);
        push_section(&mut w, SEC_DIR, i, p);
        let mut p = ByteWriter::new();
        for &r in &node.io_regs {
            p.u32(r);
        }
        push_section(&mut w, SEC_IO, i, p);
        if let Some(tr) = node.traffic.as_deref() {
            let mut p = ByteWriter::new();
            p.u64(tr.injected);
            p.u64(tr.dropped);
            p.u64(tr.retired);
            p.u64(tr.last_retire);
            p.bool(tr.poison_sent);
            tr.latency.encode(&mut p);
            tr.probe.encode(&mut p);
            push_section(&mut w, SEC_TRAFFIC, i, p);
        }
    }

    let mut p = ByteWriter::new();
    encode_femem(v.mem, &mut p);
    push_section(&mut w, SEC_MEM, 0, p);

    let mut p = ByteWriter::new();
    v.net.encode_with(&mut p, encode_env);
    push_section(&mut w, SEC_NET, 0, p);

    let mut p = ByteWriter::new();
    for &r in v.ready_at {
        p.u64(r);
    }
    for &h in v.halted_at {
        p.bool(h.is_some());
        p.u64(h.unwrap_or(0));
    }
    push_section(&mut w, SEC_SCHED, 0, p);

    let mut p = ByteWriter::new();
    p.u64(v.watchdog.sig.0);
    p.u64(v.watchdog.sig.1);
    p.u64(v.watchdog.sig.2);
    p.u64(v.watchdog.sig.3);
    p.u64(v.watchdog.last_change);
    push_section(&mut w, SEC_WATCHDOG, 0, p);

    let mut p = ByteWriter::new();
    v.meta_probe.encode(&mut p);
    push_section(&mut w, SEC_META, 0, p);

    Snapshot { bytes: w.finish() }
}

pub(crate) fn restore_machine(v: MachineViewMut<'_>, snap: &Snapshot) -> Result<(), SnapshotError> {
    {
        let mut r = ByteReader::new(&snap.bytes);
        let h = read_header(&mut r)?;
        if h.cfg_debug != semantic_config_debug(v.cfg) {
            return Err(SnapshotError::ConfigMismatch);
        }
        if h.prog_digest != prog_digest(v.prog) {
            return Err(SnapshotError::ProgramMismatch);
        }
        if h.nodes != v.nodes.len() {
            return Err(SnapshotError::ConfigMismatch);
        }
        *v.now = h.now;
    }
    let n = v.nodes.len();
    // The canonical section sequence; restore refuses anything else.
    // Traffic sections appear exactly on the edge nodes, which the
    // receiving machine knows from its own (already validated) config.
    let mut expected: Vec<(u8, u32)> = Vec::with_capacity(n * 5 + 5);
    for i in 0..n as u32 {
        expected.extend([(SEC_CPU, i), (SEC_CTL, i), (SEC_DIR, i), (SEC_IO, i)]);
        if v.nodes[i as usize].traffic.is_some() {
            expected.push((SEC_TRAFFIC, i));
        }
    }
    expected.extend([
        (SEC_MEM, 0),
        (SEC_NET, 0),
        (SEC_SCHED, 0),
        (SEC_WATCHDOG, 0),
        (SEC_META, 0),
    ]);
    let mut idx = 0usize;
    let nodes = v.nodes;
    let mem = v.mem;
    let net = v.net;
    let ready_at = v.ready_at;
    let halted_at = v.halted_at;
    let watchdog = v.watchdog;
    let meta_probe = v.meta_probe;
    snap.walk_sections(|kind, node, payload| {
        let Some(&(ek, en)) = expected.get(idx) else {
            return Err(SnapshotError::Corrupt(WireError::Corrupt(
                "more sections than expected",
            )));
        };
        if (kind, node) != (ek, en) {
            return Err(SnapshotError::Corrupt(WireError::Corrupt(
                "section out of canonical order",
            )));
        }
        idx += 1;
        let mut r = ByteReader::new(payload);
        match kind {
            SEC_CPU => restore_cpu(&mut nodes[node as usize].cpu, &mut r)?,
            SEC_CTL => restore_ctl(&mut nodes[node as usize].ctl, &mut r)?,
            SEC_DIR => restore_dir(&mut nodes[node as usize].dir, &mut r)?,
            SEC_IO => {
                for reg in &mut nodes[node as usize].io_regs {
                    *reg = r.u32()?;
                }
            }
            SEC_TRAFFIC => {
                let tr = nodes[node as usize]
                    .traffic
                    .as_deref_mut()
                    .expect("expected list admits traffic sections only on edge nodes");
                tr.injected = r.u64()?;
                tr.dropped = r.u64()?;
                tr.retired = r.u64()?;
                tr.last_retire = r.u64()?;
                tr.poison_sent = r.bool()?;
                tr.latency = QHist::decode(&mut r)?;
                tr.probe = Probe::decode(&mut r)?;
                // `cursor` is derived from the arrival plan and the
                // restored clock; the caller recomputes it.
            }
            SEC_MEM => restore_femem(mem, &mut r)?,
            SEC_NET => net.restore_with(&mut r, decode_env)?,
            SEC_SCHED => {
                for slot in ready_at.iter_mut() {
                    *slot = r.u64()?;
                }
                for slot in halted_at.iter_mut() {
                    let some = r.bool()?;
                    let c = r.u64()?;
                    *slot = if some { Some(c) } else { None };
                }
            }
            SEC_WATCHDOG => {
                watchdog.sig = (r.u64()?, r.u64()?, r.u64()?, r.u64()?);
                watchdog.last_change = r.u64()?;
            }
            SEC_META => *meta_probe = Probe::decode(&mut r)?,
            _ => {
                return Err(SnapshotError::Corrupt(WireError::Corrupt(
                    "unknown section kind",
                )))
            }
        }
        if !r.is_empty() {
            return Err(SnapshotError::Corrupt(WireError::Corrupt(
                "section payload not fully consumed",
            )));
        }
        Ok(())
    })?;
    if idx != expected.len() {
        return Err(SnapshotError::Corrupt(WireError::Corrupt(
            "fewer sections than expected",
        )));
    }
    Ok(())
}

impl Alewife {
    /// Builds the machine described by `cfg`/`prog` and immediately
    /// restores `snap` into it — machine construction *from* a
    /// checkpoint, the primitive behind snapshot warm starts
    /// (DESIGN.md §16): a parameter sweep forks one warmed checkpoint
    /// per job instead of re-booting and re-warming the machine per
    /// job. `tracer`, when present, is attached before the restore so
    /// the snapshot's probe rings land in live probes and the
    /// continuation's trace is bit-exact with the checkpointed run's.
    /// `cfg` may differ from the snapshot's configuration in scheduler
    /// knobs only (see [`Snapshot`] on semantic normalization).
    pub fn from_snapshot(
        cfg: MachineConfig,
        prog: Program,
        tracer: Option<april_obs::TraceConfig>,
        snap: &Snapshot,
    ) -> Result<Alewife, SnapshotError> {
        let mut m = Alewife::new(cfg, prog);
        if let Some(t) = tracer {
            crate::Machine::attach_tracer(&mut m, t);
        }
        m.restore(snap)?;
        Ok(m)
    }

    /// Captures the machine's complete state at the current cycle.
    ///
    /// Refused on a faulted machine ([`SnapshotError::Faulted`]): the
    /// fault report references state the snapshot format deliberately
    /// omits, and resuming a dead run is meaningless anyway.
    ///
    /// Takes `&mut self` to materialize any decode-engine booked runs
    /// first (their instructions semantically executed on cycles up to
    /// and including `now`); the encoded bytes are a pure read of the
    /// settled state.
    pub fn checkpoint(&mut self) -> Result<Snapshot, SnapshotError> {
        if self.fault.is_some() {
            return Err(SnapshotError::Faulted);
        }
        for i in 0..self.nodes.len() {
            self.settle_resv(i);
        }
        // Clocks are stamped on demand (only when a component acts), so
        // an idle node's clock lags `now`. The lag is unobservable in a
        // run but the snapshot encodes the fields verbatim — settle
        // them so sequential and parallel checkpoints agree bit for
        // bit.
        let now = self.now;
        for n in &mut self.nodes {
            n.cpu.set_clock(now);
            n.ctl.set_clock(now);
            n.dir.set_clock(now);
        }
        Ok(encode_machine(MachineView {
            nodes: &self.nodes,
            mem: &self.mem,
            net: &self.net,
            prog: &self.prog,
            cfg: &self.cfg,
            ready_at: &self.ready_at,
            halted_at: &self.halted_at,
            now: self.now,
            watchdog: &self.watchdog,
            meta_probe: &self.meta_probe,
        }))
    }

    /// Restores `snap` into this machine, which must have been built
    /// with the same [`MachineConfig`] and program (restores validate
    /// both). The continuation is bit-exact with the run the snapshot
    /// was taken from, on any scheduler. A failed restore leaves the
    /// machine in an unspecified state — rebuild it before retrying.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        restore_machine(
            MachineViewMut {
                nodes: &mut self.nodes,
                mem: &mut self.mem,
                net: &mut self.net,
                prog: &self.prog,
                cfg: &self.cfg,
                ready_at: &mut self.ready_at,
                halted_at: &mut self.halted_at,
                now: &mut self.now,
                watchdog: &mut self.watchdog,
                meta_probe: &mut self.meta_probe,
            },
            snap,
        )?;
        self.fault = None;
        // Injection cursors are derived: every arrival with a birth
        // cycle ≤ the restored clock was already handled before the
        // checkpoint.
        if let Some(plan) = &self.plan {
            for (node, arrivals) in plan.entries() {
                if let Some(tr) = self.nodes[*node].traffic.as_deref_mut() {
                    tr.reset_cursor(arrivals, self.now);
                }
            }
        }
        // `parked` is a pure optimization hint ("stepping this CPU is
        // known to yield NoReadyFrame"); all-false is always safe and
        // reproduces the lockstep ledger regardless of what the
        // checkpointed machine had inferred.
        self.parked.fill(false);
        // Booked runs are scheduler bookkeeping over pre-restore state;
        // snapshots are always settled, so none can survive a restore.
        for n in &mut self.nodes {
            n.resv = None;
        }
        self.sig_stale = true;
        Ok(())
    }
}

impl ParallelAlewife {
    /// Builds the parallel machine described by `cfg`/`prog` and
    /// immediately restores `snap` into it (see
    /// [`Alewife::from_snapshot`]); snapshots cross freely between the
    /// sequential and parallel machines and any worker count.
    pub fn from_snapshot(
        cfg: MachineConfig,
        prog: Program,
        tracer: Option<april_obs::TraceConfig>,
        snap: &Snapshot,
    ) -> Result<ParallelAlewife, SnapshotError> {
        let mut m = ParallelAlewife::new(cfg, prog);
        if let Some(t) = tracer {
            m.attach_tracer(t);
        }
        m.restore(snap)?;
        Ok(m)
    }

    /// Captures the machine's complete state at the current cycle.
    /// Interchangeable with [`Alewife::checkpoint`]: the two machines
    /// encode the identical field set. `&mut self` for the same reason
    /// as the sequential machine: booked decode-engine runs
    /// materialize before encoding.
    pub fn checkpoint(&mut self) -> Result<Snapshot, SnapshotError> {
        if self.fault().is_some() {
            return Err(SnapshotError::Faulted);
        }
        for i in 0..self.nodes.len() {
            self.settle_resv(i);
        }
        Ok(encode_machine(MachineView {
            nodes: &self.nodes,
            mem: &self.mem,
            net: &self.net,
            prog: &self.prog,
            cfg: &self.cfg,
            ready_at: &self.ready_at,
            halted_at: &self.halted_at,
            now: self.now,
            watchdog: &self.watchdog,
            meta_probe: &self.meta_probe,
        }))
    }

    /// Restores `snap` into this machine (see [`Alewife::restore`]);
    /// snapshots cross freely between the sequential and parallel
    /// machines and any worker count.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        restore_machine(
            MachineViewMut {
                nodes: &mut self.nodes,
                mem: &mut self.mem,
                net: &mut self.net,
                prog: &self.prog,
                cfg: &self.cfg,
                ready_at: &mut self.ready_at,
                halted_at: &mut self.halted_at,
                now: &mut self.now,
                watchdog: &mut self.watchdog,
                meta_probe: &mut self.meta_probe,
            },
            snap,
        )?;
        self.fault = None;
        // Injection cursors are derived state, recomputed from the
        // plan and the restored clock (see `Alewife::restore`).
        if let Some(plan) = &self.plan {
            for (node, arrivals) in plan.entries() {
                if let Some(tr) = self.nodes[*node].traffic.as_deref_mut() {
                    tr.reset_cursor(arrivals, self.now);
                }
            }
        }
        for n in &mut self.nodes {
            n.resv = None;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{drive_sequential, drive_sequential_until, SwitchSpin};
    use crate::Machine;
    use april_core::isa::asm::assemble;
    use april_net::topology::Topology;
    use april_obs::TraceConfig;

    fn cfg() -> MachineConfig {
        MachineConfig {
            topology: Topology::new(2, 2),
            region_bytes: 0x10000,
            ..MachineConfig::default()
        }
    }

    fn prog() -> Program {
        assemble(
            "
            movi 0x10000, r1
            movi 77, r2
            st r2, r1+0
            ld r1+0, r3
            movi 0x100, r4
            st r3, r4+0
            halt
        ",
        )
        .unwrap()
    }

    fn boot_all(m: &mut Alewife) {
        for i in 0..m.nodes.len() {
            m.nodes[i].cpu.boot(0);
        }
    }

    #[test]
    fn checkpoint_restore_roundtrips_mid_run() {
        let driver = SwitchSpin::default();
        let mut m = Alewife::new(cfg(), prog());
        m.attach_tracer(TraceConfig::default());
        boot_all(&mut m);
        drive_sequential_until(&mut m, &driver, 25, 100_000);
        assert_eq!(m.now(), 25, "capped drive lands exactly on the cycle");
        let snap = m.checkpoint().unwrap();
        assert_eq!(snap.cycle(), 25);

        let mut r = Alewife::new(cfg(), prog());
        r.attach_tracer(TraceConfig::default());
        r.restore(&snap).unwrap();
        assert_eq!(r.now(), 25);
        assert_eq!(diff_snapshots(&snap, &r.checkpoint().unwrap()), None);

        // Both continuations finish identically.
        assert_eq!(drive_sequential(&mut m, &driver, 100_000), None);
        assert_eq!(drive_sequential(&mut r, &driver, 100_000), None);
        assert_eq!(m.mem().read(0x100), april_core::word::Word(77));
        assert_eq!(r.mem().read(0x100), april_core::word::Word(77));
        assert_eq!(m.halted_cycles(), r.halted_cycles());
        assert_eq!(
            m.collect_trace().events(),
            r.collect_trace().events(),
            "post-restore trace is byte-identical"
        );
        assert_eq!(
            m.stats_report().to_json(),
            r.stats_report().to_json(),
            "post-restore stats report is byte-identical"
        );
    }

    #[test]
    fn restore_rejects_config_and_program_mismatch() {
        let mut m = Alewife::new(cfg(), prog());
        boot_all(&mut m);
        let snap = m.checkpoint().unwrap();

        let other_cfg = MachineConfig {
            mem_latency: 11,
            ..cfg()
        };
        let mut r = Alewife::new(other_cfg, prog());
        assert_eq!(r.restore(&snap), Err(SnapshotError::ConfigMismatch));

        let mut r = Alewife::new(cfg(), assemble("halt").unwrap());
        assert_eq!(r.restore(&snap), Err(SnapshotError::ProgramMismatch));
    }

    #[test]
    fn from_bytes_validates_framing() {
        let mut m = Alewife::new(cfg(), prog());
        let snap = m.checkpoint().unwrap();
        let bytes = snap.as_bytes().to_vec();
        assert_eq!(Snapshot::from_bytes(bytes.clone()).unwrap(), snap);

        assert_eq!(
            Snapshot::from_bytes(b"nope".to_vec()),
            Err(SnapshotError::Corrupt(WireError::Eof { at: 0 }))
        );
        let mut wrong_magic = bytes.clone();
        wrong_magic[8] = b'X'; // first magic byte (after the length prefix)
        assert_eq!(
            Snapshot::from_bytes(wrong_magic),
            Err(SnapshotError::BadMagic)
        );
        let mut wrong_version = bytes.clone();
        wrong_version[12] = 99;
        assert_eq!(
            Snapshot::from_bytes(wrong_version),
            Err(SnapshotError::Version(99))
        );
        let mut truncated = bytes;
        truncated.truncate(truncated.len() - 1);
        assert!(matches!(
            Snapshot::from_bytes(truncated),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn diff_names_the_first_differing_section() {
        let driver = SwitchSpin::default();
        let mut m = Alewife::new(cfg(), prog());
        boot_all(&mut m);
        let a = m.checkpoint().unwrap();
        drive_sequential_until(&mut m, &driver, 5, 100_000);
        let mut m2 = Alewife::new(cfg(), prog());
        boot_all(&mut m2);
        drive_sequential_until(&mut m2, &driver, 5, 100_000);
        let b = m2.checkpoint().unwrap();
        let d = diff_snapshots(&a, &b).expect("cycle 0 vs cycle 5 must differ");
        assert!(
            d.starts_with("section cpu@0"),
            "first difference is node 0's CPU, got: {d}"
        );
        assert_eq!(diff_snapshots(&b, &m.checkpoint().unwrap()), None);
    }

    #[test]
    fn faulted_machine_refuses_checkpoint() {
        use crate::watchdog::{MachineFault, PostMortem};
        let mut m = Alewife::new(cfg(), prog());
        m.fault = Some(MachineFault::NoForwardProgress(Box::<PostMortem>::default()));
        assert_eq!(m.checkpoint().unwrap_err(), SnapshotError::Faulted);
    }

    #[test]
    fn sequential_snapshot_restores_into_parallel_machine() {
        let driver = SwitchSpin::default();
        let pcfg = MachineConfig {
            workers: 2,
            ..cfg()
        };

        // Reference: unbroken parallel run.
        let mut reference = ParallelAlewife::new(pcfg, prog());
        reference.attach_tracer(TraceConfig::default());
        for i in 0..reference.num_procs() {
            reference.cpu_mut(i).boot(0);
        }
        assert_eq!(reference.run(&driver, 100_000), None);

        // Checkpoint a sequential run at cycle 30, restore into a
        // parallel machine, finish there.
        let mut m = Alewife::new(pcfg, prog());
        m.attach_tracer(TraceConfig::default());
        boot_all(&mut m);
        drive_sequential_until(&mut m, &driver, 30, 100_000);
        let snap = m.checkpoint().unwrap();

        let mut p = ParallelAlewife::new(pcfg, prog());
        p.attach_tracer(TraceConfig::default());
        p.restore(&snap).unwrap();
        assert_eq!(p.now(), 30);
        assert_eq!(p.run(&driver, 100_000), None);

        assert_eq!(p.halted_cycles(), reference.halted_cycles());
        let mut t_ref = reference.collect_trace();
        let mut t_p = p.collect_trace();
        t_ref.retain_semantic();
        t_p.retain_semantic();
        assert_eq!(t_ref.events(), t_p.events());
        assert_eq!(
            reference.stats_report().to_json(),
            p.stats_report().to_json()
        );
        // The semantic state is byte-identical; only the meta lane
        // (scheduler-internal window barriers) may differ.
        let d = diff_snapshots(&reference.checkpoint().unwrap(), &p.checkpoint().unwrap());
        assert!(
            d.is_none() || d.as_deref() == Some("section meta@0"),
            "only the meta lane may differ across schedulers, got {d:?}"
        );
    }
}
