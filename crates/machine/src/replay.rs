//! Deterministic replay and divergence bisection.
//!
//! Because a restored machine continues bit-exactly, a [`Snapshot`]
//! plus the machine's configuration and program is a *reproducer*: any
//! cycle of the original run can be revisited by restoring and driving
//! forward. [`Replayer`] packages that, and [`Replayer::bisect`] turns
//! it into a debugging tool — given a reference trace (from the
//! original run, or from the same snapshot replayed on a different
//! scheduler) it binary-searches the **first cycle at which the replay's
//! semantic event stream diverges** and names the offending lane and
//! event. O(log n) replays instead of one cycle-by-cycle comparison
//! pass over the whole run.
//!
//! Comparisons use the semantic trace ([`Trace::retain_semantic`]),
//! the same stream the cross-scheduler determinism contract is stated
//! over. One caveat carries over from the probe rings: each lane
//! retains its most recent [`TraceConfig::capacity`] events, so
//! bisection is exact only while no lane has overwritten events in the
//! compared window — size `capacity` to the run (the trace's
//! `overwritten()` counter says whether this bit).

use crate::alewife::Alewife;
use crate::config::MachineConfig;
use crate::driver::{drive_sequential_until, NodeDriver};
use crate::snapshot::{Snapshot, SnapshotError};
use crate::Machine;
use april_core::program::Program;
use april_obs::{lane_component, lane_node, Component, Event, Trace, TraceConfig};
use std::fmt;

/// The first point at which a replay's event stream departs from the
/// reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The first cycle whose events differ.
    pub cycle: u64,
    /// The lane of the diverging event.
    pub lane: u32,
    /// The component half of the lane.
    pub component: Component,
    /// The node half of the lane.
    pub node: u32,
    /// The diverging event's per-lane sequence number.
    pub seq: u64,
    /// The reference's event at the divergence point, if it has one.
    pub expected: Option<Event>,
    /// The replay's event at the divergence point, if it has one.
    pub actual: Option<Event>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "first divergence at cycle {}: {:?} lane (node {}, seq {})",
            self.cycle, self.component, self.node, self.seq
        )?;
        match (&self.expected, &self.actual) {
            (Some(e), Some(a)) => write!(f, ": expected {e:?}, got {a:?}"),
            (Some(e), None) => write!(f, ": expected {e:?}, replay has no event here"),
            (None, Some(a)) => write!(f, ": reference has no event here, replay has {a:?}"),
            (None, None) => Ok(()),
        }
    }
}

/// Compares the two traces' semantic events up to and including
/// `cycle_cap`, returning the first mismatch. Both traces must be in
/// canonical order (as [`Machine::collect_trace`] returns them).
pub fn first_divergence(reference: &Trace, replay: &Trace, cycle_cap: u64) -> Option<Divergence> {
    let semantic = |t: &Trace| {
        let mut t = t.clone();
        t.retain_semantic();
        t
    };
    let a = semantic(reference);
    let b = semantic(replay);
    let ae = a.events().iter().filter(|e| e.cycle <= cycle_cap);
    let be = b.events().iter().filter(|e| e.cycle <= cycle_cap);
    let mut ae = ae.peekable();
    let mut be = be.peekable();
    loop {
        match (ae.peek().copied(), be.peek().copied()) {
            (None, None) => return None,
            (x, y) if x == y => {
                ae.next();
                be.next();
            }
            (x, y) => {
                let witness = x.or(y).expect("at least one side has an event");
                return Some(Divergence {
                    cycle: witness.cycle,
                    lane: witness.lane,
                    component: lane_component(witness.lane),
                    node: lane_node(witness.lane),
                    seq: witness.seq,
                    expected: x.copied(),
                    actual: y.copied(),
                });
            }
        }
    }
}

/// Rebuilds machines from snapshots and drives them forward for
/// comparison. Holds everything a rebuild needs: the configuration,
/// the program image, and the trace configuration the reference run
/// used (probes must be attached with identical parameters or the
/// sampled streams are incomparable).
pub struct Replayer {
    cfg: MachineConfig,
    prog: Program,
    trace_cfg: TraceConfig,
}

impl Replayer {
    /// A replayer for machines built from `cfg` + `prog`, traced with
    /// `trace_cfg`.
    pub fn new(cfg: MachineConfig, prog: Program, trace_cfg: TraceConfig) -> Replayer {
        Replayer {
            cfg,
            prog,
            trace_cfg,
        }
    }

    /// Builds a fresh machine, attaches probes, and restores `snap`
    /// into it.
    pub fn rebuild(&self, snap: &Snapshot) -> Result<Alewife, SnapshotError> {
        let mut m = Alewife::new(self.cfg, self.prog.clone());
        m.attach_tracer(self.trace_cfg);
        m.restore(snap)?;
        Ok(m)
    }

    /// Restores `snap` and drives to `stop_at` (or quiescence/fault,
    /// whichever first), returning the machine for inspection.
    pub fn run_to(
        &self,
        snap: &Snapshot,
        driver: &dyn NodeDriver,
        stop_at: u64,
        max: u64,
    ) -> Result<Alewife, SnapshotError> {
        let mut m = self.rebuild(snap)?;
        drive_sequential_until(&mut m, driver, stop_at, max);
        Ok(m)
    }

    /// Binary-searches the first cycle in `(snap.cycle(), end]` at
    /// which replaying from `snap` diverges from `reference` (a trace
    /// collected at or after `end` on the reference run). Returns
    /// `None` when the whole window matches. `max` bounds every replay
    /// (a hang panics, as in [`drive_sequential_until`]).
    ///
    /// Cost: O(log(end - snap.cycle())) replays. The search relies on
    /// divergence being *persistent* — once the streams disagree at
    /// cycle c they disagree at every cap ≥ c — which holds because
    /// events are compared in canonical order.
    pub fn bisect(
        &self,
        snap: &Snapshot,
        driver: &dyn NodeDriver,
        reference: &Trace,
        end: u64,
        max: u64,
    ) -> Result<Option<Divergence>, SnapshotError> {
        let full = self.run_to(snap, driver, end, max)?;
        if first_divergence(reference, &full.collect_trace(), end).is_none() {
            return Ok(None);
        }
        // Invariant: no visible divergence at cap `lo`; divergence
        // visible at cap `hi`.
        let mut lo = snap.cycle();
        let mut hi = end;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let m = self.run_to(snap, driver, mid, max)?;
            if first_divergence(reference, &m.collect_trace(), mid).is_some() {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let m = self.run_to(snap, driver, hi, max)?;
        Ok(first_divergence(reference, &m.collect_trace(), hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{EventCtx, SwitchSpin};
    use crate::Machine;
    use april_core::cpu::StepEvent;
    use april_core::frame::FrameState;
    use april_core::isa::asm::assemble;
    use april_core::trap::Trap;
    use april_net::topology::Topology;

    /// A (deliberately wasteful) run-time that never parks a missing
    /// frame: the faulting instruction retries every handler interval,
    /// re-trapping until the fill lands. Each re-trap emits another
    /// `TrapTaken` event, so replaying under this driver departs from a
    /// `SwitchSpin` reference at the first remote miss — a *semantic*
    /// divergence, unlike a mere handler-cost change (whose extra delay
    /// is absorbed by the remote wait and never reaches the trace).
    struct HotRetry;

    impl NodeDriver for HotRetry {
        fn on_event(&self, node: usize, ev: StepEvent, ctx: &mut dyn EventCtx) {
            match ev {
                StepEvent::Trapped(Trap::RemoteMiss { .. }) => {
                    let cpu = ctx.cpu();
                    let fp = cpu.fp();
                    let fr = cpu.frame_mut(fp);
                    fr.state = FrameState::Ready;
                    fr.psr.in_trap = false;
                    ctx.charge_handler(6);
                }
                StepEvent::Trapped(t) => panic!("node {node}: {t}"),
                StepEvent::NoReadyFrame => {
                    let cpu = ctx.cpu();
                    match cpu.next_ready_frame() {
                        Some(f) => cpu.set_fp(f),
                        None => ctx.charge_idle(1),
                    }
                }
                _ => {}
            }
        }
    }

    fn cfg() -> MachineConfig {
        MachineConfig {
            topology: Topology::new(2, 2),
            region_bytes: 0x10000,
            ..MachineConfig::default()
        }
    }

    fn prog() -> Program {
        assemble(
            "
            movi 0x10000, r1
            movi 77, r2
            st r2, r1+0
            ld r1+0, r3
            halt
        ",
        )
        .unwrap()
    }

    /// Runs the reference to completion, checkpointing at `stop`.
    fn traced_run(stop: u64) -> (Alewife, Snapshot) {
        let driver = SwitchSpin::default();
        let mut m = Alewife::new(cfg(), prog());
        m.attach_tracer(TraceConfig::default());
        for i in 0..m.nodes.len() {
            m.nodes[i].cpu.boot(0);
        }
        drive_sequential_until(&mut m, &driver, stop, 100_000);
        let snap = m.checkpoint().unwrap();
        crate::driver::drive_sequential(&mut m, &driver, 100_000);
        (m, snap)
    }

    #[test]
    fn faithful_replay_has_no_divergence() {
        let (reference, snap) = traced_run(20);
        let end = reference.now();
        let rep = Replayer::new(cfg(), prog(), TraceConfig::default());
        let d = rep
            .bisect(
                &snap,
                &SwitchSpin::default(),
                &reference.collect_trace(),
                end,
                100_000,
            )
            .unwrap();
        assert_eq!(d, None);
    }

    #[test]
    fn perturbed_replay_bisects_to_the_first_divergent_cycle() {
        // Checkpoint at cycle 1, before the program's remote-miss
        // traps, so the perturbed run-time policy takes effect after
        // the restore.
        let (reference, snap) = traced_run(1);
        let end = reference.now();
        let rep = Replayer::new(cfg(), prog(), TraceConfig::default());
        let d = rep
            .bisect(&snap, &HotRetry, &reference.collect_trace(), end, 100_000)
            .unwrap()
            .expect("perturbed replay must diverge");
        // The divergence must be minimal: replaying to the cycle just
        // before it shows no divergence.
        if d.cycle > snap.cycle() + 1 {
            let m = rep.run_to(&snap, &HotRetry, d.cycle - 1, 100_000).unwrap();
            assert_eq!(
                first_divergence(&reference.collect_trace(), &m.collect_trace(), d.cycle - 1),
                None,
                "divergence at {} was not the first",
                d.cycle
            );
        }
        assert!(d.to_string().contains("first divergence at cycle"));
    }

    #[test]
    fn divergence_reports_lane_and_events() {
        let (reference, snap) = traced_run(1);
        let end = reference.now();
        let rep = Replayer::new(cfg(), prog(), TraceConfig::default());
        let d = rep
            .bisect(&snap, &HotRetry, &reference.collect_trace(), end, 100_000)
            .unwrap()
            .unwrap();
        assert_eq!(d.component, lane_component(d.lane));
        assert_eq!(d.node, lane_node(d.lane));
        assert!(d.expected.is_some() || d.actual.is_some());
    }
}
