//! Directory-representation equivalence: sparse directories are a
//! *performance* representation, never a *semantic* one (DESIGN.md §14).
//!
//! Three suites:
//!
//! 1. A seeded property test drives random coherence traffic through
//!    all three directory kinds — full-map, limited-pointer (broadcast
//!    on overflow), coarse-vector — on a 9-node mesh with caps small
//!    enough that overflow *is* exercised, and asserts the final
//!    memory image and the retired-instruction stream of every CPU are
//!    identical. The generated programs are branch-free and every
//!    memory word has a single writer whose value sequence is
//!    immediate-derived, so those observables are timing-independent
//!    by construction: any divergence is a protocol bug introduced by
//!    the sparse representation.
//! 2. A mid-run checkpoint/restore round-trip per directory kind: the
//!    snapshot cut lands while imprecise sharer sets and lazy memory
//!    holes are live, and the restored machine's re-encoded checkpoint
//!    must be a byte fixed point.
//! 3. The cross-kind acceptance gate: with caps no overflow can reach
//!    (≤ 8 sharers on a 4-node machine), the sparse kinds must be
//!    **bit-identical** to full-map — semantic trace, statistics
//!    report, and final memory — across lockstep, event-skipping, and
//!    parallel schedulers, under two fault-injection seeds.

use april_core::program::Program;
use april_machine::alewife::Alewife;
use april_machine::config::MachineConfig;
use april_machine::driver::{drive_sequential, drive_sequential_until, SwitchSpin};
use april_machine::parallel::ParallelAlewife;
use april_machine::Machine;
use april_mem::DirectoryKind;
use april_net::fault::{FaultPlan, FaultRule};
use april_net::topology::Topology;
use april_obs::{Event, Trace, TraceConfig};
use april_util::Rng;

const MAX: u64 = 3_000_000;

/// The three kinds under test, with caps small enough that a 9-node
/// machine overflows both sparse representations.
const SPARSE_KINDS: [DirectoryKind; 2] = [
    DirectoryKind::LimitedPtr { ptrs: 2 },
    DirectoryKind::CoarseVector { region: 2 },
];

fn cfg9(kind: DirectoryKind) -> MachineConfig {
    let mut c = MachineConfig {
        topology: Topology::new(2, 3), // 9 nodes: enough sharers to spill inline storage
        region_bytes: 0x1000,
        ..MachineConfig::default()
    };
    c.dir.kind = kind;
    c
}

/// A random branch-free program, identical on every node, whose
/// node-visible behaviour diverges only through `ldio 1` (the node-id
/// byte offset):
///
/// * stores go to the executing node's own word inside one of three
///   falsely-shared 36-byte spans (single writer per word, value
///   register `r10` evolves by immediates only — final contents are a
///   pure function of the program text);
/// * loads hit either another node's word (creating read-sharing on
///   the written blocks, so overflowed sets get invalidated) or a
///   never-written remote pool block (so sharer sets grow to all nine
///   nodes and overflow the sparse caps); loaded values land in a
///   sink register and never flow back into memory.
fn random_program(rng: &mut Rng) -> Program {
    let mut s = String::from(
        "
        .entry main
        main:
            ldio 1, r8         ; node id (fixnum == 4*id: byte offset!)
            movi 0x200, r1
            add r1, r8, r1     ; my word in span A
            movi 0x240, r2
            add r2, r8, r2     ; my word in span B
            movi 0x280, r3
            add r3, r8, r3     ; my word in span C
            movi 0x200, r5     ; span bases: everyone reads node 0's words
            movi 0x240, r6
            movi 0x280, r7
            movi 0x1000, r4    ; read-only pool blocks, one per remote region
            movi 0x2000, r12
            movi 0x3000, r13
            movi 4, r10        ; the (deterministic) value register
        ",
    );
    let ops = 24 + rng.gen_index(33);
    for _ in 0..ops {
        match rng.gen_index(8) {
            0 | 1 => {
                let span = 1 + rng.gen_index(3);
                s.push_str(&format!("    st r10, r{span}+0\n"));
            }
            2 | 3 => {
                let span = 5 + rng.gen_index(3);
                s.push_str(&format!("    ld r{span}+0, r11\n"));
            }
            4 | 5 => {
                let pool = [4, 12, 13][rng.gen_index(3)];
                let off = 4 * rng.gen_index(4);
                s.push_str(&format!("    ld r{pool}+{off}, r11\n"));
            }
            6 => s.push_str("    add r10, 4, r10\n"),
            _ => {
                let v = 4 * (1 + rng.gen_index(64));
                s.push_str(&format!("    movi {v}, r10\n"));
            }
        }
    }
    s.push_str("    halt\n");
    april_core::isa::asm::assemble(&s).unwrap()
}

/// Boots and runs a program to quiescence on the event-skipping
/// sequential scheduler under the given directory kind.
fn run_kind(kind: DirectoryKind, prog: &Program) -> Alewife {
    let mut m = Alewife::new(cfg9(kind), prog.clone());
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    drive_sequential(&mut m, &SwitchSpin::default(), MAX);
    assert!(m.fault().is_none(), "{kind:?}: machine faulted");
    assert!(m.all_halted(), "{kind:?}: watchdog horizon reached");
    m
}

fn assert_same_memory(a: &april_mem::femem::FeMemory, b: &april_mem::femem::FeMemory, who: &str) {
    assert_eq!(a.len_bytes(), b.len_bytes());
    for addr in (0..a.len_bytes() as u32).step_by(4) {
        assert_eq!(
            a.word_state(addr),
            b.word_state(addr),
            "{who}: memory diverged at {addr:#x}"
        );
    }
}

fn total_overflows(m: &Alewife) -> u64 {
    m.nodes.iter().map(|n| n.dir.stats.overflows).sum()
}

/// The retired-instruction stream of each CPU, as the pair of
/// architectural counters that fully determine it for a branch-free
/// program: instructions retired and memory operations completed.
fn retired(m: &Alewife) -> Vec<(u64, u64)> {
    (0..m.num_procs())
        .map(|i| (m.cpu(i).stats.instructions, m.cpu(i).stats.mem_ops))
        .collect()
}

#[test]
fn sparse_kinds_match_full_map_over_random_traffic() {
    let mut rng = Rng::seed_from(0x0d12);
    let mut sparse_overflows = [0u64; 2];
    for case in 0..100 {
        let prog = random_program(&mut rng);
        let reference = run_kind(DirectoryKind::FullMap, &prog);
        assert_eq!(
            total_overflows(&reference),
            0,
            "full-map must never count an overflow"
        );
        for (k, kind) in SPARSE_KINDS.into_iter().enumerate() {
            let m = run_kind(kind, &prog);
            assert_eq!(
                retired(&reference),
                retired(&m),
                "case {case}, {kind:?}: retired-instruction streams diverged"
            );
            assert_same_memory(reference.mem(), m.mem(), &format!("case {case}, {kind:?}"));
            sparse_overflows[k] += total_overflows(&m);
        }
    }
    // The point of the small caps is to exercise the imprecise paths:
    // across 100 cases both sparse kinds must actually overflow.
    for (k, kind) in SPARSE_KINDS.into_iter().enumerate() {
        assert!(
            sparse_overflows[k] > 0,
            "{kind:?}: the soak never overflowed — caps too generous to test anything"
        );
    }
}

#[test]
fn checkpoints_round_trip_under_every_directory_kind() {
    let mut rng = Rng::seed_from(0x0d13);
    let prog = random_program(&mut rng);
    for kind in [
        DirectoryKind::FullMap,
        DirectoryKind::LimitedPtr { ptrs: 2 },
        DirectoryKind::CoarseVector { region: 2 },
    ] {
        // Run the reference to quiescence.
        let mut reference = Alewife::new(cfg9(kind), prog.clone());
        for i in 0..reference.num_procs() {
            reference.cpu_mut(i).boot(0);
        }
        drive_sequential(&mut reference, &SwitchSpin::default(), MAX);
        assert!(reference.all_halted());

        // Cut an identical run mid-protocol and checkpoint.
        let mut cut = Alewife::new(cfg9(kind), prog.clone());
        for i in 0..cut.num_procs() {
            cut.cpu_mut(i).boot(0);
        }
        drive_sequential_until(&mut cut, &SwitchSpin::default(), 300, MAX);
        let snap = cut.checkpoint().unwrap();

        // Restoring and re-encoding must be a byte fixed point even
        // with imprecise sharer sets and memory holes in the image.
        let mut resumed = Alewife::new(cfg9(kind), prog.clone());
        resumed.restore(&snap).unwrap();
        let again = resumed.checkpoint().unwrap();
        assert_eq!(
            april_machine::diff_snapshots(&snap, &again),
            None,
            "{kind:?}: restore→checkpoint is not a byte fixed point"
        );

        // And the resumed run must land exactly where the unbroken
        // one did.
        drive_sequential(&mut resumed, &SwitchSpin::default(), MAX);
        assert!(resumed.all_halted());
        assert_eq!(
            retired(&reference),
            retired(&resumed),
            "{kind:?}: resumed run retired differently"
        );
        assert_same_memory(reference.mem(), resumed.mem(), &format!("{kind:?} resume"));
    }
}

// ---------------------------------------------------------------------------
// Cross-kind bit-identity on the scheduler equivalence suite.
// ---------------------------------------------------------------------------

fn cfg4(kind: DirectoryKind) -> MachineConfig {
    let mut c = MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: 1 << 20,
        ..MachineConfig::default()
    };
    c.dir.kind = kind;
    c
}

/// The false-sharing increment stress from the scheduler suite: four
/// nodes each increment their own word of one shared block 50 times.
fn stress() -> Program {
    april_core::isa::asm::assemble(
        "
        .entry main
        main:
            ldio 1, r8         ; node id (fixnum == 4*id: byte offset!)
            movi 0x200, r9
            add r9, r8, r9     ; my word within the shared block
            movi 50, r10
        loop:
            ld r9+0, r11
            add r11, 4, r11    ; increment (fixnum +1)
            st r11, r9+0
            sub r10, 1, r10
            jne loop
            nop
            halt
        ",
    )
    .unwrap()
}

fn plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).with_default_rule(FaultRule {
        drop: 0.02,
        dup: 0.02,
        delay: 0.04,
        max_delay: 40,
    })
}

fn semantic(t: Trace) -> Vec<Event> {
    let mut t = t;
    t.retain_semantic();
    t.events().to_vec()
}

fn run_seq(kind: DirectoryKind, seed: u64, lockstep: bool) -> Alewife {
    let mut m = Alewife::new(
        MachineConfig {
            lockstep,
            ..cfg4(kind)
        },
        stress(),
    );
    m.attach_tracer(TraceConfig::default());
    m.set_fault_plan(plan(seed));
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    drive_sequential(&mut m, &SwitchSpin::default(), MAX);
    assert!(m.fault().is_none());
    m
}

fn run_par(kind: DirectoryKind, seed: u64, workers: usize) -> ParallelAlewife {
    let mut m = ParallelAlewife::new(
        MachineConfig {
            workers,
            ..cfg4(kind)
        },
        stress(),
    );
    m.attach_tracer(TraceConfig::default());
    m.set_fault_plan(plan(seed));
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    m.run(&SwitchSpin::default(), MAX);
    assert!(m.fault().is_none());
    m
}

/// With sharer counts that fit the inline pointer array (a 4-node
/// machine can have at most 4 sharers), the sparse kinds must send the
/// exact same protocol messages as full-map — so the entire observable
/// machine is bit-identical: semantic trace, stats report, memory.
/// Verified across both sequential schedulers and the parallel one,
/// under two fault seeds.
#[test]
fn sparse_kinds_are_bit_identical_below_their_caps() {
    let kinds = [
        DirectoryKind::LimitedPtr { ptrs: 8 },
        DirectoryKind::CoarseVector { region: 64 },
    ];
    for seed in [0x50a1, 0xa1ce] {
        let reference = run_seq(DirectoryKind::FullMap, seed, false);
        let ref_trace = semantic(reference.collect_trace());
        let ref_report = reference.stats_report().to_json();

        for kind in kinds {
            // Event-skipping sequential.
            let skip = run_seq(kind, seed, false);
            assert_eq!(
                semantic(skip.collect_trace()),
                ref_trace,
                "seed {seed:#x}, {kind:?} skip: trace diverged from full-map"
            );
            assert_eq!(
                skip.stats_report().to_json(),
                ref_report,
                "seed {seed:#x}, {kind:?} skip: stats diverged from full-map"
            );
            assert_same_memory(
                reference.mem(),
                skip.mem(),
                &format!("seed {seed:#x}, {kind:?} skip"),
            );

            // Lockstep sequential.
            let lock = run_seq(kind, seed, true);
            assert_eq!(
                semantic(lock.collect_trace()),
                ref_trace,
                "seed {seed:#x}, {kind:?} lockstep: trace diverged from full-map"
            );
            assert_eq!(
                lock.stats_report().to_json(),
                ref_report,
                "seed {seed:#x}, {kind:?} lockstep: stats diverged from full-map"
            );

            // Parallel, two workers.
            let par = run_par(kind, seed, 2);
            assert_eq!(
                semantic(par.collect_trace()),
                ref_trace,
                "seed {seed:#x}, {kind:?} parallel: trace diverged from full-map"
            );
            assert_eq!(
                par.stats_report().to_json(),
                ref_report,
                "seed {seed:#x}, {kind:?} parallel: stats diverged from full-map"
            );
            assert_same_memory(
                reference.mem(),
                par.mem(),
                &format!("seed {seed:#x}, {kind:?} parallel"),
            );
        }
    }
}
