//! Fault-injection soaks: the coherence protocol must survive an
//! unreliable network. Under seeded drop/duplicate/delay schedules the
//! false-sharing stress must still terminate and produce a final
//! memory image bit-identical to the fault-free run; with recovery
//! disabled, the forward-progress watchdog must catch the induced
//! deadlock and produce a structured post-mortem.

use april_core::cpu::StepEvent;
use april_core::frame::FrameState;
use april_core::isa::asm::assemble;
use april_core::program::Program;
use april_core::trap::Trap;
use april_core::word::Word;
use april_machine::alewife::Alewife;
use april_machine::config::MachineConfig;
use april_machine::watchdog::{MachineFault, WatchdogConfig};
use april_machine::Machine;
use april_mem::{ProtocolError, RetryConfig};
use april_net::fault::{FaultPlan, FaultRule};
use april_net::topology::{Channel, Topology};

/// Drives the machine with a switch-spin-only handler until all CPUs
/// halt or the machine reports a fault (the caller decides which
/// outcome it expects).
fn run(m: &mut Alewife, max: u64) {
    loop {
        assert!(m.now() < max, "timeout at cycle {}", m.now());
        if m.fault().is_some() {
            return;
        }
        if (0..m.num_procs()).all(|i| m.cpu(i).is_halted()) {
            return;
        }
        for (i, ev) in m.advance() {
            match ev {
                StepEvent::Trapped(Trap::RemoteMiss { .. }) => {
                    let fp = m.cpu(i).fp();
                    let fr = m.cpu_mut(i).frame_mut(fp);
                    fr.state = FrameState::WaitingRemote;
                    fr.psr.in_trap = false;
                    m.charge_handler(i, 6);
                }
                StepEvent::Trapped(t) => panic!("node {i}: {t}"),
                StepEvent::NoReadyFrame => {
                    let cpu = m.cpu_mut(i);
                    match cpu.next_ready_frame() {
                        Some(f) => cpu.set_fp(f),
                        None => m.charge_idle(i, 1),
                    }
                }
                _ => {}
            }
        }
    }
}

/// The false-sharing increment stress of `coherence_stress.rs`: four
/// nodes each increment their own word of one shared block 50 times.
fn stress_program() -> Program {
    assemble(
        "
        .entry main
        main:
            ldio 1, r8         ; node id (fixnum == 4*id: byte offset!)
            movi 0x200, r9
            add r9, r8, r9     ; my word within the shared block
            movi 50, r10
        loop:
            ld r9+0, r11
            add r11, 4, r11    ; increment (fixnum +1)
            st r11, r9+0
            sub r10, 1, r10
            jne loop
            nop
            halt
        ",
    )
    .unwrap()
}

fn stress_cfg() -> MachineConfig {
    MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: 1 << 20,
        ..MachineConfig::default()
    }
}

/// Runs the stress to completion and returns the machine.
fn run_stress(plan: Option<FaultPlan>, max: u64) -> Alewife {
    let mut m = Alewife::new(stress_cfg(), stress_program());
    if let Some(plan) = plan {
        m.set_fault_plan(plan);
    }
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    run(&mut m, max);
    if let Some(f) = m.fault() {
        panic!("machine fault under soak:\n{f}");
    }
    m
}

/// Asserts two machines ended with bit-identical memory over the
/// stressed region (program image + the shared block + slack).
fn assert_memory_identical(a: &Alewife, b: &Alewife) {
    for addr in (0..0x1000u32).step_by(4) {
        assert_eq!(
            a.mem().read(addr),
            b.mem().read(addr),
            "memory diverged at {addr:#x}"
        );
    }
}

#[test]
fn soak_with_drops_and_dups_is_bit_identical_to_fault_free() {
    let clean = run_stress(None, 3_000_000);
    let mut dropped = 0;
    let mut duplicated = 0;
    for seed in [0x50a1_u64, 2, 3] {
        // ≥1% loss and duplication plus jitter that reorders packets.
        let plan = FaultPlan::new(seed).with_default_rule(FaultRule {
            drop: 0.02,
            dup: 0.02,
            delay: 0.04,
            max_delay: 40,
        });
        let faulty = run_stress(Some(plan), 30_000_000);
        let stats = faulty.fault_stats();
        assert!(
            stats.total() > 0,
            "seed {seed:#x}: soak injected no faults at all"
        );
        dropped += stats.dropped;
        duplicated += stats.duplicated;
        for i in 0..4u32 {
            assert_eq!(
                faulty.mem().read(0x200 + 4 * i),
                Word::fixnum(50),
                "node {i}'s count corrupted under faults (seed {seed:#x})"
            );
        }
        assert_memory_identical(&clean, &faulty);
    }
    assert!(dropped > 0, "no seed ever dropped a packet");
    assert!(duplicated > 0, "no seed ever duplicated a packet");
}

#[test]
fn duplicate_and_reorder_storm_preserves_coherence() {
    // No losses: every fault is a duplicated or delayed (reordered)
    // message, so any corruption here is a dedup/ordering bug.
    let clean = run_stress(None, 3_000_000);
    let plan = FaultPlan::new(0xd0b1).with_default_rule(FaultRule {
        drop: 0.0,
        dup: 0.2,
        delay: 0.15,
        max_delay: 120,
    });
    let faulty = run_stress(Some(plan), 30_000_000);
    assert!(
        faulty.fault_stats().duplicated > 20,
        "storm too mild to mean anything"
    );
    assert_memory_identical(&clean, &faulty);
    let stale: u64 = faulty.nodes.iter().map(|n| n.ctl.stats.stale_replies).sum();
    let stale_acks: u64 = faulty.nodes.iter().map(|n| n.dir.stats.stale_acks).sum();
    assert!(
        stale + stale_acks > 0,
        "duplicates never reached the dedup paths"
    );
}

/// A 2-node machine where every packet leaving node 0 is dropped.
fn dead_link_machine(retry: RetryConfig, watchdog: WatchdogConfig) -> Alewife {
    let cfg = MachineConfig {
        topology: Topology::new(1, 2),
        region_bytes: 1 << 20,
        ctl: april_mem::CtlConfig {
            retry,
            ..april_mem::CtlConfig::default()
        },
        dir: april_mem::DirConfig {
            retry,
            ..april_mem::DirConfig::default()
        },
        watchdog,
        ..MachineConfig::default()
    };
    // Node 0 reads node 1's region: the request dies on node 0's link.
    let prog = assemble(
        "
        movi 0x100000, r1
        ld r1+0, r2
        halt
        ",
    )
    .unwrap();
    let mut m = Alewife::new(cfg, prog);
    let plan = FaultPlan::new(0xdead)
        .with_channel_rule(
            Channel {
                node: 0,
                dim: 0,
                plus: true,
            },
            FaultRule::drop(1.0),
        )
        .with_channel_rule(
            Channel {
                node: 0,
                dim: 0,
                plus: false,
            },
            FaultRule::drop(1.0),
        );
    m.set_fault_plan(plan);
    m.boot();
    m
}

/// Advances until the machine faults (or panics at `max`).
fn run_until_fault(m: &mut Alewife, max: u64) {
    while m.fault().is_none() {
        assert!(m.now() < max, "no fault by cycle {}", m.now());
        for (i, ev) in m.advance() {
            match ev {
                StepEvent::Trapped(Trap::RemoteMiss { .. }) => {
                    let fp = m.cpu(i).fp();
                    let fr = m.cpu_mut(i).frame_mut(fp);
                    fr.state = FrameState::WaitingRemote;
                    fr.psr.in_trap = false;
                    m.charge_handler(i, 6);
                }
                StepEvent::NoReadyFrame => m.charge_idle(i, 1),
                _ => {}
            }
        }
    }
}

#[test]
fn dead_link_without_retries_trips_the_watchdog() {
    let wd = WatchdogConfig {
        enabled: true,
        horizon: 3_000,
    };
    let mut m = dead_link_machine(RetryConfig::disabled(), wd);
    run_until_fault(&mut m, 200_000);
    let Some(MachineFault::NoForwardProgress(pm)) = m.fault() else {
        panic!("expected a watchdog fault, got {:?}", m.fault());
    };
    // The post-mortem names the stuck transaction and the parked frame.
    assert_eq!(pm.horizon, 3_000);
    assert!(
        pm.outstanding
            .iter()
            .any(|t| t.node == 0 && t.block == 0x100000),
        "post-mortem lost the stuck transaction: {pm}"
    );
    assert!(
        pm.stalled_frames
            .iter()
            .any(|f| f.node == 0 && f.state == FrameState::WaitingRemote),
        "post-mortem lost the waiting frame: {pm}"
    );
    assert!(pm.fault_stats.dropped >= 1);
    let report = pm.to_string();
    assert!(report.contains("no forward progress"));
    assert!(report.contains("outstanding transactions"));
}

#[test]
fn dead_link_with_retries_exhausts_into_protocol_fault() {
    // With retransmission enabled the controller keeps resending into
    // the dead link and gives up with a typed error before the (large)
    // watchdog horizon elapses.
    let retry = RetryConfig {
        enabled: true,
        timeout: 50,
        backoff_cap: 200,
        max_retries: 5,
    };
    let mut m = dead_link_machine(
        retry,
        WatchdogConfig {
            enabled: true,
            horizon: 100_000,
        },
    );
    run_until_fault(&mut m, 500_000);
    match m.fault() {
        Some(MachineFault::Protocol {
            node: 0,
            error:
                ProtocolError::RetriesExhausted {
                    block: 0x100000,
                    retries: 5,
                    ..
                },
        }) => {}
        other => panic!("expected retries-exhausted on node 0, got {other:?}"),
    }
    assert!(
        m.fault_stats().dropped >= 5,
        "each retransmission must have been dropped"
    );
}

#[test]
fn quiescent_machine_never_trips_the_watchdog() {
    // A machine that halts immediately sits still forever — with no
    // pending work the stable signature is quiescence, not deadlock.
    let cfg = MachineConfig {
        topology: Topology::new(1, 2),
        region_bytes: 1 << 20,
        watchdog: WatchdogConfig {
            enabled: true,
            horizon: 500,
        },
        ..MachineConfig::default()
    };
    let mut m = Alewife::new(cfg, assemble("halt").unwrap());
    m.boot();
    for _ in 0..5_000 {
        m.advance();
    }
    assert!(
        m.fault().is_none(),
        "watchdog fired on an idle machine: {:?}",
        m.fault()
    );
}
