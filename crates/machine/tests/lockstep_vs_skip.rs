//! Three-way scheduler equivalence: the event-driven `advance()` and
//! the conservative-window parallel machine must both be *bit-exact*
//! with the strict cycle-by-cycle reference path. Every workload here
//! runs under the identical [`SwitchSpin`] driver on all three
//! schedulers (the parallel one at several worker counts), and the
//! machines must end in bit-identical states: the same final memory
//! image (data words *and* full/empty bits), the same per-node
//! `CpuStats`/`CtlStats`/`DirStats`, the same per-node halt cycles, the
//! same network and fault-injection counters, and the same structured
//! fault — post-mortem included — for the watchdog workloads.
//!
//! Runs drain to full quiescence (every CPU halted, no protocol work
//! pending, network idle), so "final state" is well-defined even though
//! the schedulers' clocks stop at different cycles: past quiescence a
//! machine can only tick time forward, never change state.

use april_core::isa::asm::assemble;
use april_core::program::Program;
use april_machine::alewife::Alewife;
use april_machine::config::MachineConfig;
use april_machine::driver::{drive_sequential, SwitchSpin};
use april_machine::parallel::ParallelAlewife;
use april_machine::watchdog::{MachineFault, WatchdogConfig};
use april_machine::Machine;
use april_mem::{ProtocolError, RetryConfig};
use april_net::fault::{FaultPlan, FaultRule};
use april_net::topology::{Channel, Topology};
use april_obs::{validate_json, TraceConfig};

/// Builds, boots (all nodes), and drives one sequential machine.
fn run_seq(
    mut cfg: MachineConfig,
    prog: Program,
    plan: Option<FaultPlan>,
    lockstep: bool,
    max: u64,
) -> Alewife {
    cfg.lockstep = lockstep;
    let mut m = Alewife::new(cfg, prog);
    if let Some(plan) = plan {
        m.set_fault_plan(plan);
    }
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    drive_sequential(&mut m, &SwitchSpin::default(), max);
    m
}

/// Builds, boots (all nodes), and runs one parallel machine.
fn run_par(
    mut cfg: MachineConfig,
    prog: Program,
    plan: Option<FaultPlan>,
    workers: usize,
    max: u64,
) -> ParallelAlewife {
    cfg.workers = workers;
    let mut m = ParallelAlewife::new(cfg, prog);
    if let Some(plan) = plan {
        m.set_fault_plan(plan);
    }
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    m.run(&SwitchSpin::default(), max);
    m
}

/// Asserts the full-memory images (words and full/empty bits) match.
fn assert_same_memory(a: &april_mem::femem::FeMemory, b: &april_mem::femem::FeMemory, who: &str) {
    assert_eq!(a.len_bytes(), b.len_bytes());
    for addr in (0..a.len_bytes() as u32).step_by(4) {
        assert_eq!(
            a.word_state(addr),
            b.word_state(addr),
            "{who}: memory diverged at {addr:#x}"
        );
    }
}

/// Asserts a parallel run ended bit-identical to the lockstep
/// reference.
fn assert_par_matches(reference: &Alewife, par: &ParallelAlewife, workers: usize) {
    let who = format!("parallel x{workers}");
    assert_eq!(
        reference.fault(),
        par.fault(),
        "{who}: fault outcome diverged"
    );
    for i in 0..reference.nodes.len() {
        assert_eq!(
            reference.nodes[i].cpu.stats,
            par.node(i).cpu.stats,
            "{who}: node {i} CpuStats diverged"
        );
        assert_eq!(
            reference.nodes[i].ctl.stats,
            par.node(i).ctl.stats,
            "{who}: node {i} CtlStats diverged"
        );
        assert_eq!(
            reference.nodes[i].dir.stats,
            par.node(i).dir.stats,
            "{who}: node {i} DirStats diverged"
        );
    }
    assert_eq!(
        reference.halted_cycles(),
        par.halted_cycles(),
        "{who}: halt cycles diverged"
    );
    assert_eq!(
        reference.net_stats(),
        par.net_stats(),
        "{who}: network stats diverged"
    );
    assert_eq!(
        reference.fault_stats(),
        par.fault_stats(),
        "{who}: fault-injection stats diverged"
    );
    assert_same_memory(reference.mem(), par.mem(), &who);
}

/// Runs `prog` under all three schedulers and asserts bit-exact
/// equivalence: lockstep vs event-skip (cycle-for-cycle, including the
/// stop cycle), and lockstep vs parallel at 2 and 3 workers (full final
/// state; the parallel clock may coast a partial window past the
/// sequential stop cycle, so `now` itself is not compared).
fn assert_equivalent(cfg: MachineConfig, prog: Program, plan: Option<FaultPlan>, max: u64) {
    let reference = run_seq(cfg, prog.clone(), plan.clone(), true, max);
    let skipping = run_seq(cfg, prog.clone(), plan.clone(), false, max);

    assert_eq!(
        reference.now(),
        skipping.now(),
        "halt/fault cycle diverged (lockstep {} vs skip {})",
        reference.now(),
        skipping.now()
    );
    assert_eq!(
        reference.fault(),
        skipping.fault(),
        "fault outcome diverged"
    );
    for i in 0..reference.num_procs() {
        assert_eq!(
            reference.nodes[i].cpu.stats, skipping.nodes[i].cpu.stats,
            "node {i}: CpuStats diverged"
        );
        assert_eq!(
            reference.nodes[i].ctl.stats, skipping.nodes[i].ctl.stats,
            "node {i}: CtlStats diverged"
        );
        assert_eq!(
            reference.nodes[i].dir.stats, skipping.nodes[i].dir.stats,
            "node {i}: DirStats diverged"
        );
    }
    assert_eq!(
        reference.halted_cycles(),
        skipping.halted_cycles(),
        "halt cycles diverged"
    );
    assert_eq!(
        reference.net_stats(),
        skipping.net_stats(),
        "network stats diverged"
    );
    assert_eq!(
        reference.fault_stats(),
        skipping.fault_stats(),
        "fault-injection stats diverged"
    );
    assert_same_memory(reference.mem(), skipping.mem(), "skip");

    for workers in [2, 3] {
        let par = run_par(cfg, prog.clone(), plan.clone(), workers, max);
        assert_par_matches(&reference, &par, workers);
    }
}

/// The false-sharing increment stress of `coherence_stress.rs`.
fn stress_program() -> Program {
    assemble(
        "
        .entry main
        main:
            ldio 1, r8         ; node id (fixnum == 4*id: byte offset!)
            movi 0x200, r9
            add r9, r8, r9     ; my word within the shared block
            movi 50, r10
        loop:
            ld r9+0, r11
            add r11, 4, r11    ; increment (fixnum +1)
            st r11, r9+0
            sub r10, 1, r10
            jne loop
            nop
            halt
        ",
    )
    .unwrap()
}

fn stress_cfg() -> MachineConfig {
    MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: 1 << 20,
        ..MachineConfig::default()
    }
}

/// Like `stress_cfg`, but with a 2-cycle loopback so the parallel
/// scheduler earns full-width (2-cycle) windows; the default 1-cycle
/// loopback caps the lookahead — and thus the window — at 1.
fn wide_window_cfg() -> MachineConfig {
    MachineConfig {
        net: april_net::network::NetConfig {
            hop_latency: 1,
            loopback_latency: 2,
        },
        ..stress_cfg()
    }
}

#[test]
fn coherence_stress_is_cycle_exact() {
    assert_equivalent(stress_cfg(), stress_program(), None, 3_000_000);
}

#[test]
fn coherence_stress_is_cycle_exact_with_wide_windows() {
    // Same stress under a 2-cycle conservative window: the parallel
    // barrier merge now batches two cycles of staged sends at a time.
    assert_equivalent(wide_window_cfg(), stress_program(), None, 3_000_000);
}

#[test]
fn coherence_stress_is_cycle_exact_on_a_larger_mesh() {
    // More nodes, longer remote-miss stalls: the regime where the
    // event-driven skip actually earns its keep, and where the
    // parallel shards (64 nodes over 2 and 3 workers) carry uneven
    // node counts.
    let cfg = MachineConfig {
        topology: Topology::new(2, 8),
        region_bytes: 1 << 20,
        ..MachineConfig::default()
    };
    assert_equivalent(cfg, stress_program(), None, 10_000_000);
}

#[test]
fn fault_soak_is_cycle_exact() {
    // Drops force controller retransmissions, dups exercise the dedup
    // paths, delays reorder packets: every scheduler must track every
    // retransmit deadline and fault verdict cycle for cycle. The
    // parallel machine additionally proves that the deterministic
    // merge order reproduces the sequential packet ids — the fault
    // RNG draws hang off them.
    for seed in [0x50a1_u64, 2, 3] {
        let plan = FaultPlan::new(seed).with_default_rule(FaultRule {
            drop: 0.02,
            dup: 0.02,
            delay: 0.04,
            max_delay: 40,
        });
        assert_equivalent(stress_cfg(), stress_program(), Some(plan), 30_000_000);
    }
}

#[test]
fn fault_soak_is_cycle_exact_with_wide_windows() {
    let plan = FaultPlan::new(0x50a1).with_default_rule(FaultRule {
        drop: 0.02,
        dup: 0.02,
        delay: 0.04,
        max_delay: 40,
    });
    assert_equivalent(wide_window_cfg(), stress_program(), Some(plan), 30_000_000);
}

/// A 2-node machine where every packet leaving node 0 is dropped (as in
/// `fault_soak.rs`), parameterized by retry/watchdog policy.
fn dead_link(retry: RetryConfig, watchdog: WatchdogConfig) -> (MachineConfig, Program, FaultPlan) {
    let cfg = MachineConfig {
        topology: Topology::new(1, 2),
        region_bytes: 1 << 20,
        ctl: april_mem::CtlConfig {
            retry,
            ..april_mem::CtlConfig::default()
        },
        dir: april_mem::DirConfig {
            retry,
            ..april_mem::DirConfig::default()
        },
        watchdog,
        ..MachineConfig::default()
    };
    let prog = assemble(
        "
        movi 0x100000, r1
        ld r1+0, r2
        halt
        ",
    )
    .unwrap();
    let plan = FaultPlan::new(0xdead)
        .with_channel_rule(
            Channel {
                node: 0,
                dim: 0,
                plus: true,
            },
            FaultRule::drop(1.0),
        )
        .with_channel_rule(
            Channel {
                node: 0,
                dim: 0,
                plus: false,
            },
            FaultRule::drop(1.0),
        );
    (cfg, prog, plan)
}

#[test]
fn watchdog_fires_at_the_identical_cycle() {
    // With no retries, the only future event on the dead link is the
    // watchdog itself. The equivalence check covers the structured
    // fault, including the post-mortem's cycle, in-flight list, and
    // per-node fragments — the parallel machine assembles its
    // post-mortem from shard fragments and must produce the identical
    // report.
    let wd = WatchdogConfig {
        enabled: true,
        horizon: 3_000,
    };
    let (cfg, prog, plan) = dead_link(RetryConfig::disabled(), wd);
    assert_equivalent(cfg, prog.clone(), Some(plan.clone()), 200_000);
    // And the fault really is the watchdog, on all schedulers.
    let m = run_seq(cfg, prog.clone(), Some(plan.clone()), false, 200_000);
    assert!(
        matches!(m.fault(), Some(MachineFault::NoForwardProgress(_))),
        "expected a watchdog fault, got {:?}",
        m.fault()
    );
    let p = run_par(cfg, prog, Some(plan), 2, 200_000);
    assert!(
        matches!(p.fault(), Some(MachineFault::NoForwardProgress(_))),
        "expected a watchdog fault in parallel mode, got {:?}",
        p.fault()
    );
}

#[test]
fn retries_exhaust_at_the_identical_cycle() {
    // With retries enabled, the controller's retransmit deadlines are
    // the machine's only heartbeat: every scheduler must stop at each
    // backoff expiry so the RetriesExhausted fault lands on the same
    // cycle — the parallel machine shrinks its window to end on it.
    let retry = RetryConfig {
        enabled: true,
        timeout: 50,
        backoff_cap: 200,
        max_retries: 5,
    };
    let wd = WatchdogConfig {
        enabled: true,
        horizon: 100_000,
    };
    let (cfg, prog, plan) = dead_link(retry, wd);
    assert_equivalent(cfg, prog.clone(), Some(plan.clone()), 500_000);
    let m = run_seq(cfg, prog, Some(plan), false, 500_000);
    assert!(
        matches!(
            m.fault(),
            Some(MachineFault::Protocol {
                node: 0,
                error: ProtocolError::RetriesExhausted {
                    block: 0x100000,
                    retries: 5,
                    ..
                },
            })
        ),
        "expected retries-exhausted on node 0, got {:?}",
        m.fault()
    );
}

#[test]
fn quiescent_machine_skips_without_diverging() {
    // A machine that halts immediately: all schedulers must sit still,
    // never fire the watchdog, and agree on every counter.
    let cfg = MachineConfig {
        topology: Topology::new(1, 2),
        region_bytes: 1 << 20,
        watchdog: WatchdogConfig {
            enabled: true,
            horizon: 500,
        },
        ..MachineConfig::default()
    };
    let prog = assemble("halt").unwrap();
    let mut lockstep = Alewife::new(
        MachineConfig {
            lockstep: true,
            ..cfg
        },
        prog.clone(),
    );
    let mut skipping = Alewife::new(cfg, prog.clone());
    lockstep.boot();
    skipping.boot();
    for _ in 0..5_000 {
        lockstep.advance();
        skipping.advance();
    }
    assert_eq!(lockstep.fault(), None);
    assert_eq!(skipping.fault(), None);
    assert_eq!(lockstep.nodes[0].cpu.stats, skipping.nodes[0].cpu.stats);
    assert_eq!(lockstep.nodes[1].cpu.stats, skipping.nodes[1].cpu.stats);
    // The parallel run drains to quiescence: with both nodes booted
    // into an immediate halt, it stops on its own and agrees.
    let par = run_par(cfg, prog, None, 2, 10_000);
    assert_eq!(par.fault(), None);
    assert!(par.cpu(0).is_halted() && par.cpu(1).is_halted());
}

/// Like [`run_seq`], with event probes attached before boot.
fn run_seq_traced(
    mut cfg: MachineConfig,
    prog: Program,
    plan: Option<FaultPlan>,
    lockstep: bool,
    max: u64,
    tc: TraceConfig,
) -> Alewife {
    cfg.lockstep = lockstep;
    let mut m = Alewife::new(cfg, prog);
    m.attach_tracer(tc);
    if let Some(plan) = plan {
        m.set_fault_plan(plan);
    }
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    drive_sequential(&mut m, &SwitchSpin::default(), max);
    m
}

/// Like [`run_par`], with event probes attached before boot.
fn run_par_traced(
    mut cfg: MachineConfig,
    prog: Program,
    plan: Option<FaultPlan>,
    workers: usize,
    max: u64,
    tc: TraceConfig,
) -> ParallelAlewife {
    cfg.workers = workers;
    let mut m = ParallelAlewife::new(cfg, prog);
    m.attach_tracer(tc);
    if let Some(plan) = plan {
        m.set_fault_plan(plan);
    }
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    m.run(&SwitchSpin::default(), max);
    m
}

/// Runs `prog` under all three schedulers with probes attached and
/// asserts the observability contract: the semantic trace (JSONL, after
/// dropping the scheduler-internal meta lane) and the `StatsReport`
/// JSON are byte-identical across lockstep, event-driven, and parallel
/// runs at every worker count.
fn assert_obs_equivalent(
    cfg: MachineConfig,
    prog: Program,
    plan: Option<FaultPlan>,
    max: u64,
    tc: TraceConfig,
) {
    let reference = run_seq_traced(cfg, prog.clone(), plan.clone(), true, max, tc);
    let mut ref_trace = reference.collect_trace();
    ref_trace.retain_semantic();
    let ref_jsonl = ref_trace.to_jsonl();
    let ref_report = reference.stats_report().to_json();
    assert!(
        !ref_trace.events().is_empty(),
        "reference trace is empty — the workload exercised no probes"
    );

    let skipping = run_seq_traced(cfg, prog.clone(), plan.clone(), false, max, tc);
    let mut t = skipping.collect_trace();
    t.retain_semantic();
    assert_eq!(ref_jsonl, t.to_jsonl(), "event-driven trace diverged");
    assert_eq!(
        ref_report,
        skipping.stats_report().to_json(),
        "event-driven report diverged"
    );

    for workers in [2, 3] {
        let par = run_par_traced(cfg, prog.clone(), plan.clone(), workers, max, tc);
        let mut t = par.collect_trace();
        t.retain_semantic();
        assert_eq!(
            ref_jsonl,
            t.to_jsonl(),
            "parallel x{workers} trace diverged"
        );
        assert_eq!(
            ref_report,
            par.stats_report().to_json(),
            "parallel x{workers} report diverged"
        );
    }
}

#[test]
fn trace_and_report_identical_across_schedulers() {
    // Two fault seeds over the coherence stress: drops, dups, and
    // delays give every lane real traffic (cache misses, NACKs,
    // retransmits, directory transitions, hop/drop/dup/delay events)
    // while the three schedulers must still produce byte-identical
    // traces and reports.
    for seed in [0x50a1_u64, 7] {
        let plan = FaultPlan::new(seed).with_default_rule(FaultRule {
            drop: 0.02,
            dup: 0.02,
            delay: 0.04,
            max_delay: 40,
        });
        assert_obs_equivalent(
            stress_cfg(),
            stress_program(),
            Some(plan),
            30_000_000,
            TraceConfig::default(),
        );
    }
    // And with 2-cycle conservative windows, where the parallel
    // barrier merge batches two cycles of staged sends at a time.
    let plan = FaultPlan::new(0x50a1).with_default_rule(FaultRule {
        drop: 0.02,
        dup: 0.02,
        delay: 0.04,
        max_delay: 40,
    });
    assert_obs_equivalent(
        wide_window_cfg(),
        stress_program(),
        Some(plan),
        30_000_000,
        TraceConfig::default(),
    );
}

#[test]
fn sampled_trace_identical_across_schedulers() {
    // Sampling decisions are pure hashes of event content, so a 25%
    // sample must keep exactly the same events under every scheduler.
    let tc = TraceConfig {
        sample: 0.25,
        seed: 0xfeed,
        ..TraceConfig::default()
    };
    let plan = FaultPlan::new(2).with_default_rule(FaultRule {
        drop: 0.02,
        dup: 0.02,
        delay: 0.04,
        max_delay: 40,
    });
    assert_obs_equivalent(stress_cfg(), stress_program(), Some(plan), 30_000_000, tc);

    // The sample rate actually bites: a full-rate run emits strictly
    // more retained events.
    let full = run_seq_traced(
        stress_cfg(),
        stress_program(),
        None,
        false,
        3_000_000,
        TraceConfig::default(),
    );
    let sampled = run_seq_traced(stress_cfg(), stress_program(), None, false, 3_000_000, tc);
    let full_trace = full.collect_trace();
    let sampled_trace = sampled.collect_trace();
    assert_eq!(full_trace.sampled_out(), 0);
    assert!(
        sampled_trace.sampled_out() > 0,
        "25% sampling discarded nothing"
    );
    assert!(sampled_trace.events().len() < full_trace.events().len());
}

#[test]
fn chrome_trace_of_16_node_run_is_valid_json() {
    // A 16-node mesh run exported as Chrome trace_event JSON: the
    // whole document must parse as strict JSON, and so must every
    // JSONL line.
    let cfg = MachineConfig {
        topology: Topology::new(2, 4),
        region_bytes: 1 << 16,
        ..MachineConfig::default()
    };
    let m = run_seq_traced(
        cfg,
        stress_program(),
        None,
        false,
        10_000_000,
        TraceConfig::default(),
    );
    let trace = m.collect_trace();
    assert!(!trace.events().is_empty());
    let chrome = m.collect_trace().to_chrome_trace();
    validate_json(&chrome).expect("chrome trace is valid JSON");
    for line in trace.to_jsonl().lines() {
        validate_json(line).expect("JSONL line is valid JSON");
    }
    // The report snapshot is valid JSON too, and carries the headline
    // utilization gauge.
    let report = m.stats_report();
    validate_json(&report.to_json()).expect("report is valid JSON");
    assert!(report
        .section("cpu")
        .unwrap()
        .get_gauge("utilization")
        .is_some());
}

#[test]
fn worker_count_does_not_change_the_run() {
    // Satellite determinism check: the same seed at 1, 2, 4, and 5
    // workers (5 does not divide the 64 nodes — uneven shards) must
    // produce identical cycle counts, CpuStats, fault stats, and the
    // identical full/empty memory image.
    let cfg = MachineConfig {
        topology: Topology::new(2, 8),
        region_bytes: 1 << 16,
        net: april_net::network::NetConfig {
            hop_latency: 1,
            loopback_latency: 2,
        },
        ..MachineConfig::default()
    };
    let plan = FaultPlan::new(0xc0de).with_default_rule(FaultRule {
        drop: 0.01,
        dup: 0.01,
        delay: 0.02,
        max_delay: 24,
    });
    let base = run_par(cfg, stress_program(), Some(plan.clone()), 1, 30_000_000);
    for workers in [2, 4, 5] {
        let other = run_par(
            cfg,
            stress_program(),
            Some(plan.clone()),
            workers,
            30_000_000,
        );
        assert_eq!(base.fault(), other.fault(), "x{workers}: fault diverged");
        assert_eq!(
            base.halted_cycles(),
            other.halted_cycles(),
            "x{workers}: halt cycles diverged"
        );
        for i in 0..base.num_procs() {
            assert_eq!(
                base.node(i).cpu.stats,
                other.node(i).cpu.stats,
                "x{workers}: node {i} CpuStats diverged"
            );
        }
        assert_eq!(
            base.fault_stats(),
            other.fault_stats(),
            "x{workers}: fault stats diverged"
        );
        assert_eq!(
            base.net_stats(),
            other.net_stats(),
            "x{workers}: net stats diverged"
        );
        assert_same_memory(base.mem(), other.mem(), &format!("x{workers}"));
    }
}
