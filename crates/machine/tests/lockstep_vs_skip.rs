//! Lockstep-vs-skip equivalence: the event-driven `advance()` must be
//! *cycle-exact* with the strict cycle-by-cycle reference path. Every
//! workload here runs twice — once with `MachineConfig::lockstep` set,
//! once with the default event-driven skip — under an identical driver,
//! and the two machines must end in bit-identical states: the same
//! final memory image, the same per-node `CpuStats`/`CtlStats`/
//! `DirStats`, the same network and fault-injection counters, the same
//! halt (or fault) cycle, and, for the watchdog workloads, the same
//! structured fault — post-mortem included.

use april_core::cpu::StepEvent;
use april_core::frame::FrameState;
use april_core::isa::asm::assemble;
use april_core::program::Program;
use april_core::trap::Trap;
use april_machine::alewife::Alewife;
use april_machine::config::MachineConfig;
use april_machine::watchdog::{MachineFault, WatchdogConfig};
use april_machine::Machine;
use april_mem::{ProtocolError, RetryConfig};
use april_net::fault::{FaultPlan, FaultRule};
use april_net::topology::{Channel, Topology};

/// The switch-spin driver shared by the stress and soak suites: on a
/// remote miss, park the frame and charge the trap handler; with no
/// ready frame, rotate to one or idle one cycle.
fn drive(m: &mut Alewife, max: u64) {
    loop {
        assert!(m.now() < max, "timeout at cycle {}", m.now());
        if m.fault().is_some() {
            return;
        }
        if (0..m.num_procs()).all(|i| m.cpu(i).is_halted()) {
            return;
        }
        for (i, ev) in m.advance() {
            match ev {
                StepEvent::Trapped(Trap::RemoteMiss { .. }) => {
                    let fp = m.cpu(i).fp();
                    let fr = m.cpu_mut(i).frame_mut(fp);
                    fr.state = FrameState::WaitingRemote;
                    fr.psr.in_trap = false;
                    m.charge_handler(i, 6);
                }
                StepEvent::Trapped(t) => panic!("node {i}: {t}"),
                StepEvent::NoReadyFrame => {
                    let cpu = m.cpu_mut(i);
                    match cpu.next_ready_frame() {
                        Some(f) => cpu.set_fp(f),
                        None => m.charge_idle(i, 1),
                    }
                }
                _ => {}
            }
        }
    }
}

/// Builds, boots (all nodes), and drives one machine.
fn run_one(
    mut cfg: MachineConfig,
    prog: Program,
    plan: Option<FaultPlan>,
    lockstep: bool,
    max: u64,
) -> Alewife {
    cfg.lockstep = lockstep;
    let mut m = Alewife::new(cfg, prog);
    if let Some(plan) = plan {
        m.set_fault_plan(plan);
    }
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    drive(&mut m, max);
    m
}

/// Runs `prog` under both paths and asserts bit-exact equivalence.
fn assert_equivalent(cfg: MachineConfig, prog: Program, plan: Option<FaultPlan>, max: u64) {
    let reference = run_one(cfg, prog.clone(), plan.clone(), true, max);
    let skipping = run_one(cfg, prog, plan, false, max);

    assert_eq!(
        reference.now(),
        skipping.now(),
        "halt/fault cycle diverged (lockstep {} vs skip {})",
        reference.now(),
        skipping.now()
    );
    assert_eq!(
        reference.fault(),
        skipping.fault(),
        "fault outcome diverged"
    );
    for i in 0..reference.num_procs() {
        assert_eq!(
            reference.nodes[i].cpu.stats, skipping.nodes[i].cpu.stats,
            "node {i}: CpuStats diverged"
        );
        assert_eq!(
            reference.nodes[i].ctl.stats, skipping.nodes[i].ctl.stats,
            "node {i}: CtlStats diverged"
        );
        assert_eq!(
            reference.nodes[i].dir.stats, skipping.nodes[i].dir.stats,
            "node {i}: DirStats diverged"
        );
    }
    assert_eq!(
        reference.net_stats(),
        skipping.net_stats(),
        "network stats diverged"
    );
    assert_eq!(
        reference.fault_stats(),
        skipping.fault_stats(),
        "fault-injection stats diverged"
    );
    for addr in (0..0x1000u32).step_by(4) {
        assert_eq!(
            reference.mem().read(addr),
            skipping.mem().read(addr),
            "memory diverged at {addr:#x}"
        );
    }
}

/// The false-sharing increment stress of `coherence_stress.rs`.
fn stress_program() -> Program {
    assemble(
        "
        .entry main
        main:
            ldio 1, r8         ; node id (fixnum == 4*id: byte offset!)
            movi 0x200, r9
            add r9, r8, r9     ; my word within the shared block
            movi 50, r10
        loop:
            ld r9+0, r11
            add r11, 4, r11    ; increment (fixnum +1)
            st r11, r9+0
            sub r10, 1, r10
            jne loop
            nop
            halt
        ",
    )
    .unwrap()
}

fn stress_cfg() -> MachineConfig {
    MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: 1 << 20,
        ..MachineConfig::default()
    }
}

#[test]
fn coherence_stress_is_cycle_exact() {
    assert_equivalent(stress_cfg(), stress_program(), None, 3_000_000);
}

#[test]
fn coherence_stress_is_cycle_exact_on_a_larger_mesh() {
    // More nodes, longer remote-miss stalls: the regime where the
    // event-driven skip actually earns its keep.
    let cfg = MachineConfig {
        topology: Topology::new(2, 8),
        region_bytes: 1 << 20,
        ..MachineConfig::default()
    };
    assert_equivalent(cfg, stress_program(), None, 10_000_000);
}

#[test]
fn fault_soak_is_cycle_exact() {
    // Drops force controller retransmissions, dups exercise the dedup
    // paths, delays reorder packets: the event-driven path must track
    // every retransmit deadline and fault verdict cycle for cycle.
    for seed in [0x50a1_u64, 2, 3] {
        let plan = FaultPlan::new(seed).with_default_rule(FaultRule {
            drop: 0.02,
            dup: 0.02,
            delay: 0.04,
            max_delay: 40,
        });
        assert_equivalent(stress_cfg(), stress_program(), Some(plan), 30_000_000);
    }
}

/// A 2-node machine where every packet leaving node 0 is dropped (as in
/// `fault_soak.rs`), parameterized by retry/watchdog policy.
fn dead_link(retry: RetryConfig, watchdog: WatchdogConfig) -> (MachineConfig, Program, FaultPlan) {
    let cfg = MachineConfig {
        topology: Topology::new(1, 2),
        region_bytes: 1 << 20,
        ctl: april_mem::CtlConfig {
            retry,
            ..april_mem::CtlConfig::default()
        },
        dir: april_mem::DirConfig {
            retry,
            ..april_mem::DirConfig::default()
        },
        watchdog,
        ..MachineConfig::default()
    };
    let prog = assemble(
        "
        movi 0x100000, r1
        ld r1+0, r2
        halt
        ",
    )
    .unwrap();
    let plan = FaultPlan::new(0xdead)
        .with_channel_rule(
            Channel {
                node: 0,
                dim: 0,
                plus: true,
            },
            FaultRule::drop(1.0),
        )
        .with_channel_rule(
            Channel {
                node: 0,
                dim: 0,
                plus: false,
            },
            FaultRule::drop(1.0),
        );
    (cfg, prog, plan)
}

#[test]
fn watchdog_fires_at_the_identical_cycle() {
    // With no retries, the only future event on the dead link is the
    // watchdog itself: its deadline must participate in `next_event()`
    // or the skip would sail past the firing cycle. The equivalence
    // check covers the fault (including the post-mortem's cycle).
    let wd = WatchdogConfig {
        enabled: true,
        horizon: 3_000,
    };
    let (cfg, prog, plan) = dead_link(RetryConfig::disabled(), wd);
    assert_equivalent(cfg, prog.clone(), Some(plan.clone()), 200_000);
    // And the fault really is the watchdog, on both paths.
    let m = run_one(cfg, prog, Some(plan), false, 200_000);
    assert!(
        matches!(m.fault(), Some(MachineFault::NoForwardProgress(_))),
        "expected a watchdog fault, got {:?}",
        m.fault()
    );
}

#[test]
fn retries_exhaust_at_the_identical_cycle() {
    // With retries enabled, the controller's retransmit deadlines are
    // the machine's only heartbeat: the skip must stop at each backoff
    // expiry so the RetriesExhausted fault lands on the same cycle.
    let retry = RetryConfig {
        enabled: true,
        timeout: 50,
        backoff_cap: 200,
        max_retries: 5,
    };
    let wd = WatchdogConfig {
        enabled: true,
        horizon: 100_000,
    };
    let (cfg, prog, plan) = dead_link(retry, wd);
    assert_equivalent(cfg, prog.clone(), Some(plan.clone()), 500_000);
    let m = run_one(cfg, prog, Some(plan), false, 500_000);
    assert!(
        matches!(
            m.fault(),
            Some(MachineFault::Protocol {
                node: 0,
                error: ProtocolError::RetriesExhausted {
                    block: 0x100000,
                    retries: 5,
                    ..
                },
            })
        ),
        "expected retries-exhausted on node 0, got {:?}",
        m.fault()
    );
}

#[test]
fn quiescent_machine_skips_without_diverging() {
    // A machine that halts immediately: both paths must sit still,
    // never fire the watchdog, and agree on every counter.
    let cfg = MachineConfig {
        topology: Topology::new(1, 2),
        region_bytes: 1 << 20,
        watchdog: WatchdogConfig {
            enabled: true,
            horizon: 500,
        },
        ..MachineConfig::default()
    };
    let prog = assemble("halt").unwrap();
    let mut lockstep = Alewife::new(
        MachineConfig {
            lockstep: true,
            ..cfg
        },
        prog.clone(),
    );
    let mut skipping = Alewife::new(cfg, prog);
    lockstep.boot();
    skipping.boot();
    for _ in 0..5_000 {
        lockstep.advance();
        skipping.advance();
    }
    assert_eq!(lockstep.fault(), None);
    assert_eq!(skipping.fault(), None);
    assert_eq!(lockstep.nodes[0].cpu.stats, skipping.nodes[0].cpu.stats);
    assert_eq!(lockstep.nodes[1].cpu.stats, skipping.nodes[1].cpu.stats);
}
