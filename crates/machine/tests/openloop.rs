//! Open-loop traffic determinism (DESIGN.md §15): the same seed must
//! yield a byte-identical arrival trace and latency report across the
//! lockstep, event-driven, and parallel schedulers at 1/2/4 workers —
//! fault-free, under a seeded drop/dup/delay fault plan with protocol
//! retry recovery enabled, and across a mid-run checkpoint/restore cut
//! (which exercises the per-edge-node `SEC_TRAFFIC` snapshot section
//! and the derived injection-cursor recompute).

use april_core::isa::asm::assemble;
use april_core::program::Program;
use april_machine::alewife::Alewife;
use april_machine::config::MachineConfig;
use april_machine::driver::{drive_sequential, drive_sequential_until, SwitchSpin};
use april_machine::parallel::ParallelAlewife;
use april_machine::{service_program, Machine, TrafficConfig};
use april_net::fault::{FaultPlan, FaultRule};
use april_net::topology::Topology;
use april_obs::{StatsReport, Trace, TraceConfig};

const MAX: u64 = 10_000_000;

/// A small bursty workload: both edge nodes (0 and 2 of a 2x2 mesh)
/// absorb 24 requests each, with remote work so every request forces
/// cache misses and context switches through the service loop.
fn traffic() -> TrafficConfig {
    TrafficConfig {
        seed: 0x0417_beef,
        edge_every: 2,
        requests_per_edge: 24,
        mean_gap: 150,
        phase_len: 1024,
        off_mul: 2,
        ring_offset: 0x400,
        ring_slots: 8,
        work_remote: 2,
        work_local: 8,
    }
}

fn cfg() -> MachineConfig {
    MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: 1 << 16,
        traffic: Some(traffic()),
        ..MachineConfig::default()
    }
}

fn prog() -> Program {
    assemble(&service_program(&cfg())).expect("service program assembles")
}

/// Drops, duplicates, and reordering jitter, deterministically seeded;
/// the default retry configuration recovers every lost protocol
/// message, so the run still drains to quiescence.
fn fault_plan() -> FaultPlan {
    FaultPlan::new(0x50a1).with_default_rule(FaultRule {
        drop: 0.02,
        dup: 0.02,
        delay: 0.04,
        max_delay: 40,
    })
}

fn semantic(mut t: Trace) -> String {
    t.retain_semantic();
    t.to_jsonl()
}

fn run_seq(plan: Option<FaultPlan>, lockstep: bool) -> Alewife {
    let mut m = Alewife::new(MachineConfig { lockstep, ..cfg() }, prog());
    m.attach_tracer(TraceConfig::default());
    if let Some(plan) = plan {
        m.set_fault_plan(plan);
    }
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    drive_sequential(&mut m, &SwitchSpin::default(), MAX);
    m
}

fn run_par(plan: Option<FaultPlan>, workers: usize) -> ParallelAlewife {
    let mut m = ParallelAlewife::new(MachineConfig { workers, ..cfg() }, prog());
    m.attach_tracer(TraceConfig::default());
    if let Some(plan) = plan {
        m.set_fault_plan(plan);
    }
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    m.run(&SwitchSpin::default(), MAX);
    m
}

/// Sanity-checks the merged traffic section of a quiesced run: every
/// offered request was injected or dropped, every injected request was
/// retired before the poison word, and the latency histogram holds one
/// sample per retirement with a finite tail quantile.
fn assert_traffic_sane(report: &StatsReport, who: &str) {
    let t = cfg().traffic.unwrap();
    let offered_expected = 2 * t.requests_per_edge as u64;
    let s = report.section("traffic").expect("traffic section present");
    let offered = s.get_counter("offered").unwrap();
    let injected = s.get_counter("injected").unwrap();
    let dropped = s.get_counter("dropped").unwrap();
    let retired = s.get_counter("retired").unwrap();
    assert_eq!(offered, offered_expected, "{who}: offered count");
    assert_eq!(injected + dropped, offered, "{who}: arrival accounting");
    assert_eq!(retired, injected, "{who}: ring drained before poison");
    assert!(retired > 0, "{who}: no requests retired");
    let hist = s.get_qhist("latency").expect("latency histogram present");
    assert_eq!(
        hist.count(),
        retired,
        "{who}: one latency sample per retire"
    );
    let p999 = hist.quantile(0.999);
    assert!(
        p999 > 0 && p999 < MAX,
        "{who}: p999 latency must be finite and positive, got {p999}"
    );
}

/// The core contract: lockstep is the reference; the event-driven skip
/// and the parallel machine at 1/2/4 workers must reproduce its
/// semantic trace (arrivals, drops, retires included) and its stats
/// report byte for byte.
fn assert_open_loop_equivalent(plan: Option<FaultPlan>) {
    let reference = run_seq(plan.clone(), true);
    assert_eq!(reference.fault(), None, "lockstep: fatal fault");
    assert!(reference.all_halted(), "lockstep: machine did not quiesce");
    let ref_trace = semantic(reference.collect_trace());
    let ref_report = reference.stats_report();
    let ref_json = ref_report.to_json();
    assert_traffic_sane(&ref_report, "lockstep");

    let skipping = run_seq(plan.clone(), false);
    assert_eq!(skipping.fault(), None, "event-driven: fatal fault");
    assert_eq!(
        ref_trace,
        semantic(skipping.collect_trace()),
        "event-driven: arrival/latency trace diverged"
    );
    assert_eq!(
        ref_json,
        skipping.stats_report().to_json(),
        "event-driven: latency report diverged"
    );

    for workers in [1, 2, 4] {
        let par = run_par(plan.clone(), workers);
        assert_eq!(par.fault(), None, "parallel x{workers}: fatal fault");
        assert_eq!(
            ref_trace,
            semantic(par.collect_trace()),
            "parallel x{workers}: arrival/latency trace diverged"
        );
        assert_eq!(
            ref_json,
            par.stats_report().to_json(),
            "parallel x{workers}: latency report diverged"
        );
    }
}

#[test]
fn arrival_trace_and_latency_report_identical_across_schedulers() {
    assert_open_loop_equivalent(None);
}

#[test]
fn fault_seed_with_retry_recovery_is_byte_identical() {
    // Same contract under message loss: drops force controller
    // retransmissions (recovery is enabled via the default retry
    // policy), which stretch individual service times — but the
    // stretched latencies must stretch identically everywhere.
    assert_open_loop_equivalent(Some(fault_plan()));
    // Prove the fault seed actually exercised the recovery machinery.
    let m = run_seq(Some(fault_plan()), true);
    let report = m.stats_report();
    let cache = report.section("cache").unwrap();
    let faults = report.section("faults").unwrap();
    assert!(faults.get_counter("dropped").unwrap() > 0, "no drops fired");
    assert!(
        cache.get_counter("retransmits").unwrap() > 0,
        "drops never forced a retransmit — recovery untested"
    );
}

#[test]
fn checkpoint_restore_resumes_open_loop_run_bit_exact() {
    // Unbroken reference: event-skipping run to quiescence.
    let reference = run_seq(None, false);
    let ref_trace = semantic(reference.collect_trace());
    let ref_json = reference.stats_report().to_json();

    // Cut the same run mid-workload — after some arrivals are in
    // flight, before the rings drain — and checkpoint. The snapshot
    // carries the per-edge-node SEC_TRAFFIC sections; the injection
    // cursor is recomputed from the plan at restore.
    let mut cut = Alewife::new(
        MachineConfig {
            lockstep: false,
            ..cfg()
        },
        prog(),
    );
    cut.attach_tracer(TraceConfig::default());
    for i in 0..cut.num_procs() {
        cut.cpu_mut(i).boot(0);
    }
    drive_sequential_until(&mut cut, &SwitchSpin::default(), 1_000, MAX);
    assert!(
        !cut.all_halted(),
        "checkpoint cycle must land mid-run for the test to mean anything"
    );
    let mid = cut.stats_report();
    let mid_traffic = mid.section("traffic").unwrap();
    assert!(
        mid_traffic.get_counter("injected").unwrap() > 0,
        "cut must land after the first injections"
    );
    let snap = cut.checkpoint().unwrap();

    // Resume on the lockstep scheduler and on the parallel machine.
    let mut lockstep = Alewife::new(
        MachineConfig {
            lockstep: true,
            ..cfg()
        },
        prog(),
    );
    lockstep.attach_tracer(TraceConfig::default());
    lockstep.restore(&snap).unwrap();
    drive_sequential(&mut lockstep, &SwitchSpin::default(), MAX);
    assert_eq!(
        ref_trace,
        semantic(lockstep.collect_trace()),
        "lockstep resume: trace diverged"
    );
    assert_eq!(
        ref_json,
        lockstep.stats_report().to_json(),
        "lockstep resume: report diverged"
    );

    for workers in [2, 4] {
        let mut par = ParallelAlewife::new(MachineConfig { workers, ..cfg() }, prog());
        par.attach_tracer(TraceConfig::default());
        par.restore(&snap).unwrap();
        par.run(&SwitchSpin::default(), MAX);
        assert_eq!(
            ref_trace,
            semantic(par.collect_trace()),
            "parallel x{workers} resume: trace diverged"
        );
        assert_eq!(
            ref_json,
            par.stats_report().to_json(),
            "parallel x{workers} resume: report diverged"
        );
    }
}
