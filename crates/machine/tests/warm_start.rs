//! Warm-start forks are byte-identical to cold boots.
//!
//! The april-serve daemon's headline feature — register one warmed
//! checkpoint, fork it per sweep job — rests on a machine-layer
//! contract: constructing a machine directly from a snapshot
//! (`from_snapshot`) and installing the sweep-varied fault plan at the
//! warm point must behave exactly like booting cold, re-executing the
//! warmup to the same cycle, and installing the same plan there. These
//! tests pin that contract across all three schedulers (lockstep,
//! event-driven sequential, parallel at several worker counts),
//! comparing the full stats report JSON and the semantic trace JSONL
//! byte-for-byte.

use april_core::program::Program;
use april_machine::alewife::Alewife;
use april_machine::config::MachineConfig;
use april_machine::driver::{drive_sequential, drive_sequential_until, SwitchSpin};
use april_machine::parallel::ParallelAlewife;
use april_machine::{Machine, Snapshot};
use april_net::fault::{FaultPlan, FaultRule};
use april_net::topology::Topology;
use april_obs::TraceConfig;

const WARM: u64 = 400;
const MAX: u64 = 3_000_000;

fn cfg() -> MachineConfig {
    MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: 1 << 20,
        ..MachineConfig::default()
    }
}

/// The contended false-sharing workload: every node hammers its own
/// word of one shared block, so the warm point lands mid-protocol.
fn prog() -> Program {
    april_core::isa::asm::assemble(
        "
        .entry main
        main:
            ldio 1, r8         ; node id (fixnum == 4*id: byte offset!)
            movi 0x200, r9
            add r9, r8, r9     ; my word within the shared block
            movi 50, r10
        loop:
            ld r9+0, r11
            add r11, 4, r11    ; increment (fixnum +1)
            st r11, r9+0
            sub r10, 1, r10
            jne loop
            nop
            halt
        ",
    )
    .unwrap()
}

/// The sweep-varied knob: a seeded delay/drop/dup plan.
fn plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).with_default_rule(FaultRule {
        drop: 0.01,
        dup: 0.01,
        delay: 0.04,
        max_delay: 40,
    })
}

fn trace_jsonl(m_trace: april_obs::Trace) -> String {
    let mut t = m_trace;
    t.retain_semantic();
    t.to_jsonl()
}

/// Builds the warm image the way the daemon does: cold boot, no fault
/// plan, run to the warm point on the sequential scheduler, cut.
fn warm_image() -> Snapshot {
    let mut m = Alewife::new(cfg(), prog());
    m.attach_tracer(TraceConfig::default());
    m.boot_all();
    drive_sequential_until(&mut m, &SwitchSpin::default(), WARM, MAX);
    assert!(!m.all_halted(), "workload must outlive the warm point");
    m.checkpoint().unwrap()
}

/// The cold twin: boot, re-execute the warmup, install the plan at the
/// warm point, finish. Returns (stats JSON, semantic trace JSONL).
fn cold_reference(lockstep: bool, seed: u64) -> (String, String) {
    let mut m = Alewife::new(MachineConfig { lockstep, ..cfg() }, prog());
    m.attach_tracer(TraceConfig::default());
    m.boot_all();
    drive_sequential_until(&mut m, &SwitchSpin::default(), WARM, MAX);
    m.set_fault_plan(plan(seed));
    drive_sequential(&mut m, &SwitchSpin::default(), MAX);
    assert!(m.fault().is_none());
    (m.stats_report().to_json(), trace_jsonl(m.collect_trace()))
}

#[test]
fn warm_fork_matches_cold_boot_on_every_scheduler() {
    let snap = warm_image();
    let seed = 0x1990;
    let (ref_stats, ref_trace) = cold_reference(false, seed);

    // Sequential event-driven fork.
    let mut seq =
        Alewife::from_snapshot(cfg(), prog(), Some(TraceConfig::default()), &snap).unwrap();
    seq.set_fault_plan(plan(seed));
    drive_sequential(&mut seq, &SwitchSpin::default(), MAX);
    assert_eq!(seq.stats_report().to_json(), ref_stats, "seq fork: stats");
    assert_eq!(
        trace_jsonl(seq.collect_trace()),
        ref_trace,
        "seq fork: trace"
    );

    // Lockstep fork (and a lockstep cold twin, which must also match).
    let mut lock = Alewife::from_snapshot(
        MachineConfig {
            lockstep: true,
            ..cfg()
        },
        prog(),
        Some(TraceConfig::default()),
        &snap,
    )
    .unwrap();
    lock.set_fault_plan(plan(seed));
    drive_sequential(&mut lock, &SwitchSpin::default(), MAX);
    assert_eq!(
        lock.stats_report().to_json(),
        ref_stats,
        "lockstep fork: stats"
    );
    assert_eq!(
        trace_jsonl(lock.collect_trace()),
        ref_trace,
        "lockstep fork: trace"
    );
    let (lock_cold_stats, lock_cold_trace) = cold_reference(true, seed);
    assert_eq!(lock_cold_stats, ref_stats, "lockstep cold twin: stats");
    assert_eq!(lock_cold_trace, ref_trace, "lockstep cold twin: trace");

    // Parallel forks at several worker counts.
    for workers in [1usize, 2, 4] {
        let mut par = ParallelAlewife::from_snapshot(
            MachineConfig { workers, ..cfg() },
            prog(),
            Some(TraceConfig::default()),
            &snap,
        )
        .unwrap();
        par.set_fault_plan(plan(seed));
        par.run(&SwitchSpin::default(), MAX);
        assert!(par.fault().is_none());
        assert_eq!(
            par.stats_report().to_json(),
            ref_stats,
            "parallel x{workers} fork: stats"
        );
        assert_eq!(
            trace_jsonl(par.collect_trace()),
            ref_trace,
            "parallel x{workers} fork: trace"
        );
    }
}

#[test]
fn warm_forks_with_different_seeds_diverge() {
    // Sanity for the equivalence above: the fault plan installed at
    // the warm point actually steers the run — two forks of the same
    // image with different seeds must not produce identical traces.
    let snap = warm_image();
    let mut outs = Vec::new();
    for seed in [0x1990u64, 0x2026] {
        let mut m =
            Alewife::from_snapshot(cfg(), prog(), Some(TraceConfig::default()), &snap).unwrap();
        m.set_fault_plan(plan(seed));
        drive_sequential(&mut m, &SwitchSpin::default(), MAX);
        outs.push(trace_jsonl(m.collect_trace()));
    }
    assert_ne!(outs[0], outs[1], "fault seed had no effect on the fork");
}

#[test]
fn boot_all_matches_manual_per_node_boot() {
    // boot_all is the daemon's boot path; the sweep harness and older
    // tests boot each node by hand. Same machine either way.
    let drive = |mut m: Alewife| {
        drive_sequential(&mut m, &SwitchSpin::default(), MAX);
        (m.stats_report().to_json(), trace_jsonl(m.collect_trace()))
    };
    let mut a = Alewife::new(cfg(), prog());
    a.attach_tracer(TraceConfig::default());
    a.boot_all();
    let mut b = Alewife::new(cfg(), prog());
    b.attach_tracer(TraceConfig::default());
    for i in 0..b.num_procs() {
        b.cpu_mut(i).boot(0);
    }
    assert_eq!(drive(a), drive(b));
}
