//! Checkpoint/restore round-trips across schedulers under fault
//! injection.
//!
//! The determinism contract (DESIGN.md §9) says the three schedulers
//! are bit-exact over the semantic event stream; the snapshot contract
//! (§11) extends it: a run may be cut at *any* cycle, checkpointed,
//! and resumed on a *different* scheduler — lockstep to parallel, any
//! worker count, and back — and the stitched-together run's semantic
//! trace, statistics report, and final memory image must be
//! byte-identical to an unbroken run's. These soaks exercise exactly
//! that, under a seeded fault plan (drops, duplicates, delay-reorders)
//! so the checkpoint lands mid-protocol with the injector's PRNG
//! cursors in flight.

use april_core::program::Program;
use april_machine::alewife::Alewife;
use april_machine::config::MachineConfig;
use april_machine::driver::{drive_sequential, drive_sequential_until, SwitchSpin};
use april_machine::parallel::ParallelAlewife;
use april_machine::Machine;
use april_net::fault::{FaultPlan, FaultRule};
use april_net::topology::Topology;
use april_obs::{Event, Trace, TraceConfig};

const MAX: u64 = 3_000_000;

fn cfg() -> MachineConfig {
    MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: 1 << 20,
        ..MachineConfig::default()
    }
}

/// The false-sharing increment stress: four nodes each increment
/// their own word of one shared block 50 times, forcing continuous
/// invalidation traffic.
fn prog() -> Program {
    april_core::isa::asm::assemble(
        "
        .entry main
        main:
            ldio 1, r8         ; node id (fixnum == 4*id: byte offset!)
            movi 0x200, r9
            add r9, r8, r9     ; my word within the shared block
            movi 50, r10
        loop:
            ld r9+0, r11
            add r11, 4, r11    ; increment (fixnum +1)
            st r11, r9+0
            sub r10, 1, r10
            jne loop
            nop
            halt
        ",
    )
    .unwrap()
}

/// Drops, duplicates, and reordering jitter, deterministically seeded.
fn plan() -> FaultPlan {
    FaultPlan::new(0x50a1).with_default_rule(FaultRule {
        drop: 0.02,
        dup: 0.02,
        delay: 0.04,
        max_delay: 40,
    })
}

fn semantic(t: Trace) -> Vec<Event> {
    let mut t = t;
    t.retain_semantic();
    t.events().to_vec()
}

/// A booted, fault-seeded, traced sequential machine.
fn fresh_seq(lockstep: bool) -> Alewife {
    let mut m = Alewife::new(MachineConfig { lockstep, ..cfg() }, prog());
    m.attach_tracer(TraceConfig::default());
    m.set_fault_plan(plan());
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    m
}

/// A traced parallel machine ready to be restored into (the snapshot
/// carries the fault plan and the booted CPU state).
fn fresh_par(workers: usize) -> ParallelAlewife {
    let mut m = ParallelAlewife::new(MachineConfig { workers, ..cfg() }, prog());
    m.attach_tracer(TraceConfig::default());
    m
}

fn assert_same_memory(a: &april_mem::femem::FeMemory, b: &april_mem::femem::FeMemory, who: &str) {
    assert_eq!(a.len_bytes(), b.len_bytes());
    for addr in (0..a.len_bytes() as u32).step_by(4) {
        assert_eq!(
            a.word_state(addr),
            b.word_state(addr),
            "{who}: memory diverged at {addr:#x}"
        );
    }
}

#[test]
fn fault_seeded_checkpoint_resumes_on_any_scheduler() {
    // Unbroken reference: event-skipping sequential run to quiescence.
    let mut reference = fresh_seq(false);
    drive_sequential(&mut reference, &SwitchSpin::default(), MAX);
    assert!(reference.fault().is_none());
    let ref_trace = semantic(reference.collect_trace());
    let ref_report = reference.stats_report().to_json();

    // Cut the same run mid-flight, with protocol and injector state
    // live, and checkpoint.
    let mut cut = fresh_seq(false);
    drive_sequential_until(&mut cut, &SwitchSpin::default(), 400, MAX);
    assert!(
        !cut.all_halted(),
        "checkpoint cycle must land mid-run for the test to mean anything"
    );
    let snap = cut.checkpoint().unwrap();
    assert_eq!(snap.cycle(), 400);

    // Resume on the lockstep scheduler.
    let mut lockstep = fresh_seq(true);
    lockstep.restore(&snap).unwrap();
    drive_sequential(&mut lockstep, &SwitchSpin::default(), MAX);
    assert_eq!(
        semantic(lockstep.collect_trace()),
        ref_trace,
        "lockstep resume: semantic trace diverged"
    );
    assert_eq!(
        lockstep.stats_report().to_json(),
        ref_report,
        "lockstep resume: stats diverged"
    );
    assert_same_memory(reference.mem(), lockstep.mem(), "lockstep resume");

    // Resume on the parallel scheduler, at several worker counts.
    for workers in [1, 2, 3] {
        let mut par = fresh_par(workers);
        par.restore(&snap).unwrap();
        par.run(&SwitchSpin::default(), MAX);
        assert!(par.fault().is_none());
        assert_eq!(
            semantic(par.collect_trace()),
            ref_trace,
            "parallel x{workers} resume: semantic trace diverged"
        );
        assert_eq!(
            par.stats_report().to_json(),
            ref_report,
            "parallel x{workers} resume: stats diverged"
        );
        assert_same_memory(
            reference.mem(),
            par.mem(),
            &format!("parallel x{workers} resume"),
        );
    }
}

#[test]
fn parallel_checkpoint_resumes_sequentially() {
    // Reference: unbroken sequential run.
    let mut reference = fresh_seq(false);
    drive_sequential(&mut reference, &SwitchSpin::default(), MAX);
    let ref_trace = semantic(reference.collect_trace());
    let ref_report = reference.stats_report().to_json();

    // Cut a *parallel* run (2 workers) at the same point and
    // checkpoint there.
    let mut cut = fresh_par(2);
    cut.set_fault_plan(plan());
    for i in 0..cut.num_procs() {
        cut.cpu_mut(i).boot(0);
    }
    cut.run_until(&SwitchSpin::default(), 400, MAX);
    let snap = cut.checkpoint().unwrap();

    // A sequential checkpoint at the same cycle must be identical in
    // every semantic section (the meta lane legitimately differs: the
    // parallel scheduler's window barriers are scheduler artifacts).
    let mut seq_cut = fresh_seq(false);
    drive_sequential_until(&mut seq_cut, &SwitchSpin::default(), snap.cycle(), MAX);
    let seq_snap = seq_cut.checkpoint().unwrap();
    let d = april_machine::diff_snapshots(&seq_snap, &snap);
    assert!(
        d.is_none() || d.as_deref() == Some("section meta@0"),
        "parallel and sequential checkpoints differ beyond the meta lane: {d:?}"
    );

    // Resume the parallel checkpoint sequentially and finish.
    let mut seq = fresh_seq(false);
    seq.restore(&snap).unwrap();
    drive_sequential(&mut seq, &SwitchSpin::default(), MAX);
    assert_eq!(
        semantic(seq.collect_trace()),
        ref_trace,
        "sequential resume of parallel checkpoint: semantic trace diverged"
    );
    assert_eq!(
        seq.stats_report().to_json(),
        ref_report,
        "sequential resume of parallel checkpoint: stats diverged"
    );
    assert_same_memory(reference.mem(), seq.mem(), "sequential resume");
}

#[test]
fn chained_checkpoints_compose() {
    // Checkpoint at 300 on the skip scheduler, resume on parallel,
    // checkpoint *that* at a later cycle, resume sequentially — two
    // scheduler crossings in one run, still bit-exact.
    let mut reference = fresh_seq(false);
    drive_sequential(&mut reference, &SwitchSpin::default(), MAX);
    let ref_trace = semantic(reference.collect_trace());

    let mut first = fresh_seq(false);
    drive_sequential_until(&mut first, &SwitchSpin::default(), 300, MAX);
    let snap1 = first.checkpoint().unwrap();

    let mut par = fresh_par(2);
    par.restore(&snap1).unwrap();
    par.run_until(&SwitchSpin::default(), 700, MAX);
    let snap2 = par.checkpoint().unwrap();
    assert!(snap2.cycle() >= 700);

    let mut last = fresh_seq(false);
    last.restore(&snap2).unwrap();
    drive_sequential(&mut last, &SwitchSpin::default(), MAX);
    assert_eq!(
        semantic(last.collect_trace()),
        ref_trace,
        "doubly-resumed run diverged from the unbroken reference"
    );
}
