//! Coherence stress: all nodes read-modify-write words that share one
//! cache block (false sharing), the worst case for an invalidation
//! protocol — the "cache tag" game of the paper's Section 3.1. The
//! final memory image must equal the sequential outcome regardless of
//! the invalidation storm.

use april_core::cpu::StepEvent;
use april_core::frame::FrameState;
use april_core::isa::asm::assemble;
use april_core::trap::Trap;
use april_core::word::Word;
use april_machine::alewife::Alewife;
use april_machine::config::MachineConfig;
use april_machine::Machine;
use april_net::topology::Topology;

/// Drives the machine with a switch-spin-only handler until all CPUs
/// halt.
fn run(m: &mut Alewife, max: u64) {
    loop {
        assert!(m.now() < max, "timeout");
        let mut all_halted = true;
        for i in 0..m.num_procs() {
            if !m.cpu(i).is_halted() {
                all_halted = false;
            }
        }
        if all_halted {
            return;
        }
        for (i, ev) in m.advance() {
            match ev {
                StepEvent::Trapped(Trap::RemoteMiss { .. }) => {
                    let fp = m.cpu(i).fp();
                    let fr = m.cpu_mut(i).frame_mut(fp);
                    fr.state = FrameState::WaitingRemote;
                    fr.psr.in_trap = false;
                    m.charge_handler(i, 6);
                }
                StepEvent::Trapped(t) => panic!("node {i}: {t}"),
                StepEvent::NoReadyFrame => {
                    let cpu = m.cpu_mut(i);
                    match cpu.next_ready_frame() {
                        Some(f) => cpu.set_fp(f),
                        None => m.charge_idle(i, 1),
                    }
                }
                _ => {}
            }
        }
    }
}

#[test]
fn false_sharing_increments_are_not_lost() {
    // Four nodes, each incrementing its own word of one 16-byte block
    // (in node 0's region) 50 times. Every write needs exclusive
    // ownership of the block, so the line ping-pongs on every step.
    let prog = assemble(
        "
        .entry main
        main:
            ldio 1, r8         ; node id (fixnum == 4*id: byte offset!)
            movi 0x200, r9
            add r9, r8, r9     ; my word within the shared block
            movi 50, r10
        loop:
            ld r9+0, r11
            add r11, 4, r11    ; increment (fixnum +1)
            st r11, r9+0
            sub r10, 1, r10
            jne loop
            nop
            halt
        ",
    )
    .unwrap();
    let cfg = MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: 1 << 20,
        ..MachineConfig::default()
    };
    let mut m = Alewife::new(cfg, prog);
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    run(&mut m, 3_000_000);

    for i in 0..4u32 {
        let v = m.mem().read(0x200 + 4 * i);
        assert_eq!(v, Word::fixnum(50), "node {i}'s count corrupted: {v}");
    }
    // The block really did ping-pong: plenty of ownership transfers.
    let invals: u64 = m
        .nodes
        .iter()
        .map(|n| n.ctl.stats.invals + n.ctl.stats.downgrades)
        .sum();
    let wb: u64 = m.nodes.iter().map(|n| n.ctl.stats.writebacks).sum();
    assert!(
        invals + wb > 50,
        "expected an invalidation storm, saw {invals}+{wb}"
    );
    assert!(m.total_stats().remote_misses > 20);
}

#[test]
fn read_sharing_after_writes_settles_to_shared_copies() {
    // One writer fills a block; all nodes then read it repeatedly.
    // After the first read each node must hit locally (the line stays
    // Shared everywhere) — reads don't ping-pong.
    let prog = assemble(
        "
        .entry main
        main:
            ldio 1, r8
            movi 0x300, r9
            sub r8, 0, r8      ; set cc on node id
            jne reader
            nop
            movi 28, r2        ; node 0 writes 7
            st r2, r9+0
        reader:
            movi 100, r10
            movi 0, r11
        rdloop:
            ld r9+0, r12
            add r11, r12, r11
            sub r10, 1, r10
            jne rdloop
            nop
            halt
        ",
    )
    .unwrap();
    let cfg = MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: 1 << 20,
        ..MachineConfig::default()
    };
    let mut m = Alewife::new(cfg, prog);
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    run(&mut m, 3_000_000);
    // Readers saw a mix of 0 (before the write propagated) and 7; the
    // key property: each node's *remote* misses for the loop are tiny
    // compared to its 100 reads — the Shared copy serves the rest.
    for (i, node) in m.nodes.iter().enumerate() {
        assert!(
            node.cpu.stats.remote_misses <= 4,
            "node {i} kept missing a read-shared block ({} misses)",
            node.cpu.stats.remote_misses
        );
    }
}
