//! Memory-model litmus tests: ALEWIFE "maintains strong cache
//! coherence" (paper, Section 2.1) with blocking loads/stores per
//! processor, so classic weak-ordering outcomes must be impossible.

use april_core::cpu::StepEvent;
use april_core::frame::FrameState;
use april_core::isa::asm::assemble;
use april_core::isa::Reg;
use april_core::program::Program;
use april_core::trap::Trap;
use april_core::word::Word;
use april_machine::alewife::Alewife;
use april_machine::config::MachineConfig;
use april_machine::Machine;
use april_net::topology::Topology;

fn machine(prog: Program) -> Alewife {
    let cfg = MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: 1 << 20,
        ..MachineConfig::default()
    };
    let mut m = Alewife::new(cfg, prog);
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    m
}

fn run(m: &mut Alewife, max: u64) {
    loop {
        assert!(m.now() < max, "timeout");
        if (0..m.num_procs()).all(|i| m.cpu(i).is_halted()) {
            return;
        }
        for (i, ev) in m.advance() {
            match ev {
                StepEvent::Trapped(Trap::RemoteMiss { .. }) => {
                    let fp = m.cpu(i).fp();
                    let fr = m.cpu_mut(i).frame_mut(fp);
                    fr.state = FrameState::WaitingRemote;
                    fr.psr.in_trap = false;
                    m.charge_handler(i, 6);
                }
                StepEvent::Trapped(t) => panic!("node {i}: {t}"),
                StepEvent::NoReadyFrame => {
                    let cpu = m.cpu_mut(i);
                    match cpu.next_ready_frame() {
                        Some(f) => cpu.set_fp(f),
                        None => m.charge_idle(i, 1),
                    }
                }
                _ => {}
            }
        }
    }
}

/// MP (message passing): node 0 writes data then flag; node 1 spins on
/// the flag then reads data. Seeing the flag but stale data is the
/// forbidden outcome.
#[test]
fn litmus_message_passing() {
    // data at 0x200, flag at 0x240 (different cache blocks).
    let prog = assemble(
        "
        .entry main
        main:
            ldio 1, r8
            sub r8, 0, r8
            jne reader
            nop
            movi 0x200, r1
            movi 84, r2        ; data = 21
            st r2, r1+0
            movi 0x240, r1
            movi 4, r2         ; flag = 1
            st r2, r1+0
            halt
        reader:
            movi 0x240, r1
        spin:
            ld r1+0, r2
            sub r2, 0, r2
            jeq spin
            nop
            movi 0x200, r1
            ld r1+0, r3        ; must observe data = 21
            halt
        ",
    )
    .unwrap();
    // Run the litmus many "virtual" times by checking all nodes >= 1
    // read the written value (nodes 2 and 3 also run the reader).
    let mut m = machine(prog);
    run(&mut m, 1_000_000);
    for i in 1..4 {
        assert_eq!(
            m.cpu(i).get_reg(Reg::L(3)),
            Word::fixnum(21),
            "node {i} saw the flag but stale data (MP violation)"
        );
    }
}

/// SB-like exclusivity: two nodes increment a shared counter with a
/// full/empty lock word; the total must equal the sum of increments
/// (the f/e bit is the mutual exclusion the paper's Section 3.3
/// replaces test&set with).
#[test]
fn litmus_fe_lock_counts_exactly() {
    // lock+counter at 0x300 (lock IS the counter: take with ldett,
    // store back incremented with stfnw).
    let prog = assemble(
        "
        .entry main
        main:
            movi 0x300, r1
            movi 25, r10       ; 25 increments per node
        loop:
            ldetw r1+0, r2     ; take: trap while empty, reset to empty
            add r2, 4, r2      ; +1 (fixnum)
            stfnw r2, r1+0     ; put back: set full
            sub r10, 1, r10
            jne loop
            nop
            halt
        ",
    )
    .unwrap();
    let mut m = machine(prog);
    // ldetw traps on empty; our harness treats FullEmpty as switch-spin
    // (retry): emulate by marking nothing and retrying.
    loop {
        assert!(m.now() < 5_000_000, "timeout");
        if (0..4).all(|i| m.cpu(i).is_halted()) {
            break;
        }
        for (i, ev) in m.advance() {
            match ev {
                StepEvent::Trapped(Trap::RemoteMiss { .. }) => {
                    let fp = m.cpu(i).fp();
                    let fr = m.cpu_mut(i).frame_mut(fp);
                    fr.state = FrameState::WaitingRemote;
                    fr.psr.in_trap = false;
                    m.charge_handler(i, 6);
                }
                StepEvent::Trapped(Trap::FullEmpty { .. }) => {
                    // Switch-spin: retry the take later.
                    let fp = m.cpu(i).fp();
                    m.cpu_mut(i).frame_mut(fp).psr.in_trap = false;
                    m.charge_handler(i, 6);
                }
                StepEvent::Trapped(t) => panic!("node {i}: {t}"),
                StepEvent::NoReadyFrame => {
                    let cpu = m.cpu_mut(i);
                    match cpu.next_ready_frame() {
                        Some(f) => cpu.set_fp(f),
                        None => m.charge_idle(i, 1),
                    }
                }
                _ => {}
            }
        }
    }
    assert_eq!(
        m.mem().read(0x300),
        Word::fixnum(100),
        "lost updates through the full/empty lock"
    );
    assert!(m.mem().fe(0x300), "lock must end full");
}

/// Coherence (single-location SC): concurrent writers to one word; a
/// reader polling it must never see a value go backwards once writers
/// finish, and the final value is one of the written ones.
#[test]
fn litmus_single_location_coherence() {
    let prog = assemble(
        "
        .entry main
        main:
            ldio 1, r8
            movi 0x380, r1
            sra r8, 2, r9      ; node id, untagged
            sub r9, 0, r9
            jeq reader
            nop
            ; writers (nodes 1-3): write id 40 times
            movi 40, r10
        wloop:
            sll r9, 2, r2
            st r2, r1+0
            sub r10, 1, r10
            jne wloop
            nop
            halt
        reader:
            movi 60, r10
            movi 0, r11
        rloop:
            ld r1+0, r2
            add r11, r2, r11   ; accumulate observations
            sub r10, 1, r10
            jne rloop
            nop
            halt
        ",
    )
    .unwrap();
    let mut m = machine(prog);
    run(&mut m, 2_000_000);
    let v = m.mem().read(0x380).as_fixnum().unwrap();
    assert!((1..=3).contains(&v), "final value {v} was never written");
}
