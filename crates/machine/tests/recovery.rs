//! Fail-stop fault recovery, end to end: a seeded link-kill run that
//! used to die with a `MachineFault` must now complete under the
//! [`RecoveryManager`] via quarantine + rollback — and the recovered
//! run must be bit-identical (semantic trace, stats report, memory) to
//! a fresh run launched from the same checkpoint with the quarantined
//! config, on the lockstep, event-driven, and parallel schedulers.
//! Alongside the acceptance path: the watchdog false-positive guard, a
//! deeper-rollback scenario with retries disabled, a structured
//! failure for an unrecoverable node kill, and a bounded recovery
//! soak.

use april_core::isa::asm::assemble;
use april_core::program::Program;
use april_machine::alewife::Alewife;
use april_machine::config::MachineConfig;
use april_machine::driver::{drive_sequential, drive_sequential_until, SwitchSpin};
use april_machine::parallel::ParallelAlewife;
use april_machine::recovery::{
    RecoverableMachine, RecoveryConfig, RecoveryFailure, RecoveryManager, RecoveryReport,
};
use april_machine::snapshot::diff_snapshots;
use april_machine::watchdog::{MachineFault, WatchdogConfig};
use april_machine::Machine;
use april_mem::{CtlConfig, DirConfig, RetryConfig};
use april_net::fault::FaultPlan;
use april_net::topology::{Channel, Topology};
use april_obs::{Component, EventKind, Trace, TraceConfig};

/// The false-sharing increment stress: each node bumps its own word of
/// one home-0 block 50 times — steady all-pairs traffic through node 0.
fn stress_program() -> Program {
    assemble(
        "
        .entry main
        main:
            ldio 1, r8         ; node id (fixnum == 4*id: byte offset!)
            movi 0x200, r9
            add r9, r8, r9     ; my word within the shared block
            movi 50, r10
        loop:
            ld r9+0, r11
            add r11, 4, r11    ; increment (fixnum +1)
            st r11, r9+0
            sub r10, 1, r10
            jne loop
            nop
            halt
        ",
    )
    .unwrap()
}

/// Only node 1 reads a remote (home-0) block; everyone else halts.
/// With retries disabled, swallowing the one reply wedges exactly one
/// transaction — the cleanest deeper-rollback scenario.
fn single_reader_program() -> Program {
    assemble(
        "
        .entry main
        main:
            ldio 1, r8         ; node id (fixnum == 4*id)
            sub r8, 4, r8
            jne done           ; not node 1
            movi 0x200, r1
            ld r1+0, r2
        done:
            halt
        ",
    )
    .unwrap()
}

fn mesh_cfg(retry: RetryConfig, horizon: u64) -> MachineConfig {
    MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: 1 << 20,
        ctl: CtlConfig {
            retry,
            ..CtlConfig::default()
        },
        dir: DirConfig {
            retry,
            ..DirConfig::default()
        },
        watchdog: WatchdogConfig {
            enabled: true,
            horizon,
        },
        ..MachineConfig::default()
    }
}

fn fast_retry() -> RetryConfig {
    RetryConfig {
        enabled: true,
        timeout: 50,
        backoff_cap: 200,
        max_retries: 5,
    }
}

/// The channel the acceptance scenario kills: node 0's +x link (used
/// by every reply 0 -> 1); the 0 -> 2 -> 3 -> 1 detour survives.
fn killed_channel() -> Channel {
    Channel {
        node: 0,
        dim: 0,
        plus: true,
    }
}

fn kill_plan(seed: u64, onset: u64) -> FaultPlan {
    FaultPlan::new(seed).with_link_kill(killed_channel(), onset)
}

fn recovery_cfg() -> RecoveryConfig {
    RecoveryConfig {
        checkpoint_interval: 500,
        ring_capacity: 8,
        max_attempts: 4,
        max_cycles: 2_000_000,
    }
}

fn semantic(mut t: Trace) -> Trace {
    t.retain_semantic();
    t
}

/// Everything the equivalence assertions need from one supervised run.
struct Recovered {
    report: RecoveryReport,
    trace: Trace,
    stats_json: String,
    mem: Vec<(u64, bool)>,
    snapshot: april_machine::Snapshot,
    recovery_trace: Trace,
}

fn mem_image(mem: &april_mem::femem::FeMemory) -> Vec<(u64, bool)> {
    (0..0x1000u32)
        .step_by(4)
        .map(|a| {
            let (w, full) = mem.word_state(a);
            (w.0 as u64, full)
        })
        .collect()
}

/// Supervises one sequential machine (lockstep or event-driven) to a
/// recovered completion.
fn recover_seq(lockstep: bool) -> Recovered {
    let mut cfg = mesh_cfg(fast_retry(), 20_000);
    cfg.lockstep = lockstep;
    let mut m = Alewife::new(cfg, stress_program());
    m.set_fault_plan(kill_plan(0x5eed, 200));
    m.attach_tracer(TraceConfig::default());
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    let mut mgr = RecoveryManager::new(recovery_cfg());
    mgr.attach_tracer(TraceConfig::default());
    let report = mgr.run(&mut m, &SwitchSpin::default());
    assert!(
        report.recovered,
        "lockstep={lockstep}: recovery failed: {:?}",
        report.failure
    );
    Recovered {
        report,
        trace: semantic(m.collect_trace()),
        stats_json: m.stats_report().to_json(),
        mem: mem_image(m.mem()),
        snapshot: m.checkpoint().unwrap(),
        recovery_trace: mgr.collect_trace(),
    }
}

/// Supervises one parallel machine to a recovered completion.
fn recover_par(workers: usize) -> Recovered {
    let mut cfg = mesh_cfg(fast_retry(), 20_000);
    cfg.workers = workers;
    let mut m = ParallelAlewife::new(cfg, stress_program());
    m.set_fault_plan(kill_plan(0x5eed, 200));
    m.attach_tracer(TraceConfig::default());
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    let mut mgr = RecoveryManager::new(recovery_cfg());
    mgr.attach_tracer(TraceConfig::default());
    let report = mgr.run(&mut m, &SwitchSpin::default());
    assert!(
        report.recovered,
        "workers={workers}: recovery failed: {:?}",
        report.failure
    );
    Recovered {
        report,
        trace: semantic(m.collect_trace()),
        stats_json: m.stats_report().to_json(),
        mem: mem_image(m.mem()),
        snapshot: m.checkpoint().unwrap(),
        recovery_trace: mgr.collect_trace(),
    }
}

#[test]
fn link_kill_without_recovery_is_fatal() {
    let mut m = Alewife::new(mesh_cfg(fast_retry(), 20_000), stress_program());
    m.set_fault_plan(kill_plan(0x5eed, 200));
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    let fault = drive_sequential(&mut m, &SwitchSpin::default(), 2_000_000);
    match fault {
        Some(MachineFault::Protocol { .. }) | Some(MachineFault::NoForwardProgress(_)) => {}
        other => panic!("link kill must be fatal without recovery, got {other:?}"),
    }
    assert!(
        m.fault_stats().failstop_drops > 0,
        "the kill never swallowed a packet"
    );
}

#[test]
fn recovered_run_completes_and_matches_fresh_run_from_checkpoint() {
    let rec = recover_seq(false);
    assert!(rec.report.attempts >= 1, "recovery never rolled back");
    assert!(
        !rec.report.quarantine.is_empty(),
        "recovery never quarantined anything"
    );
    // The workload's result survived the fault.
    for i in 0..4 {
        assert_eq!(
            rec.mem[(0x200 / 4) + i].0,
            april_core::word::Word::fixnum(50).0 as u64,
            "node {i}'s count corrupted across recovery"
        );
    }

    // Fresh machine, same config + program + plan; launched straight
    // from the checkpoint the last rollback restored, with the
    // quarantined config and the backed-off horizon.
    let (ckpt_cycle, snap) = rec.report.last_restored.clone().expect("rolled back");
    let mut fresh = Alewife::new(mesh_cfg(fast_retry(), 20_000), stress_program());
    fresh.set_fault_plan(kill_plan(0x5eed, 200));
    fresh.attach_tracer(TraceConfig::default());
    fresh.restore(&snap).unwrap();
    assert_eq!(RecoverableMachine::now(&fresh), ckpt_cycle);
    rec.report.quarantine.apply(&mut fresh);
    fresh.set_watchdog_horizon(rec.report.final_horizon);
    assert_eq!(
        drive_sequential(&mut fresh, &SwitchSpin::default(), 2_000_000),
        None,
        "fresh run from the quarantined checkpoint must complete"
    );

    assert_eq!(
        rec.trace.events(),
        semantic(fresh.collect_trace()).events(),
        "recovered trace != fresh-from-checkpoint trace"
    );
    assert_eq!(
        rec.stats_json,
        fresh.stats_report().to_json(),
        "recovered stats != fresh-from-checkpoint stats"
    );
    assert_eq!(
        rec.mem,
        mem_image(fresh.mem()),
        "recovered memory != fresh-from-checkpoint memory"
    );
    let d = diff_snapshots(&rec.snapshot, &fresh.checkpoint().unwrap());
    assert!(
        d.is_none() || d.as_deref() == Some("section meta@0"),
        "recovered machine state diverged from fresh run: {d:?}"
    );
}

#[test]
fn recovery_is_scheduler_invariant() {
    let lockstep = recover_seq(true);
    let event = recover_seq(false);
    let par2 = recover_par(2);
    let par4 = recover_par(4);

    for (who, other) in [("event", &event), ("par x2", &par2), ("par x4", &par4)] {
        assert_eq!(
            lockstep.report.attempts, other.report.attempts,
            "{who}: attempt count diverged"
        );
        assert_eq!(
            lockstep.report.quarantine, other.report.quarantine,
            "{who}: quarantine decision diverged"
        );
        assert_eq!(
            lockstep.trace.events(),
            other.trace.events(),
            "{who}: semantic trace diverged"
        );
        assert_eq!(
            lockstep.stats_json, other.stats_json,
            "{who}: stats report diverged"
        );
        assert_eq!(lockstep.mem, other.mem, "{who}: final memory diverged");
        assert_eq!(
            lockstep.recovery_trace.events(),
            other.recovery_trace.events(),
            "{who}: recovery saga diverged"
        );
        let d = diff_snapshots(&lockstep.snapshot, &other.snapshot);
        assert!(
            d.is_none() || d.as_deref() == Some("section meta@0"),
            "{who}: final machine state diverged: {d:?}"
        );
    }

    // The saga rode the recovery lane: checkpoints, a quarantine, a
    // rollback, a re-execution.
    let kinds: Vec<EventKind> = lockstep
        .recovery_trace
        .events()
        .iter()
        .map(|e| e.kind)
        .collect();
    assert!(kinds.contains(&EventKind::CheckpointTaken));
    assert!(kinds.contains(&EventKind::QuarantineApplied));
    assert!(kinds.contains(&EventKind::Rollback));
    assert!(kinds.contains(&EventKind::ReExecute));
    for e in lockstep.recovery_trace.events() {
        assert_eq!(
            april_obs::lane_component(e.lane),
            Component::Recovery,
            "recovery saga must ride the recovery lane"
        );
    }
}

#[test]
fn retries_disabled_wedge_recovers_via_deeper_rollback() {
    // With retries disabled the lost reply is never resent, so every
    // checkpoint after the wedge forms is itself wedged: recovery must
    // walk back past the last restore point to the initial checkpoint.
    let mut m = Alewife::new(
        mesh_cfg(RetryConfig::disabled(), 1_500),
        single_reader_program(),
    );
    m.set_fault_plan(kill_plan(0x0dd, 5));
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    let mut mgr = RecoveryManager::new(RecoveryConfig {
        checkpoint_interval: 1_000,
        ring_capacity: 8,
        max_attempts: 4,
        max_cycles: 2_000_000,
    });
    let report = mgr.run(&mut m, &SwitchSpin::default());
    assert!(
        report.recovered,
        "deeper rollback failed: {:?}",
        report.failure
    );
    assert!(
        report.attempts >= 2,
        "the wedged checkpoint should have forced at least one re-fault"
    );
    let (ckpt_cycle, _) = report.last_restored.expect("rolled back");
    assert_eq!(
        ckpt_cycle, 0,
        "only the pre-wedge initial checkpoint is resumable without retries"
    );
    assert!(m.cpu(1).is_halted(), "node 1 never finished its read");
}

#[test]
fn dead_home_node_fails_with_structured_report() {
    // Node 0 homes the shared block; killing it is unrecoverable — no
    // quarantine can conjure the data back. The manager must spend its
    // attempts and give up with a structured report, not hang or panic.
    let mut m = Alewife::new(mesh_cfg(fast_retry(), 10_000), stress_program());
    m.set_fault_plan(FaultPlan::new(0xbad).with_node_kill(0, 100));
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    let mut mgr = RecoveryManager::new(RecoveryConfig {
        checkpoint_interval: 500,
        ring_capacity: 4,
        max_attempts: 2,
        max_cycles: 2_000_000,
    });
    let report = mgr.run(&mut m, &SwitchSpin::default());
    assert!(!report.recovered);
    match report.failure {
        Some(RecoveryFailure::AttemptsExhausted(_)) | Some(RecoveryFailure::Unquarantinable(_)) => {
        }
        other => panic!("expected a structured giving-up report, got {other:?}"),
    }
    assert_eq!(report.attempts, 2, "both attempts must have been spent");
}

#[test]
fn quiescent_machine_never_trips_watchdog_on_any_scheduler() {
    // No node is ever booted: an unbooted CPU is not halted, so the
    // machine sits forever at "no ready frame" — quiescence, not
    // deadlock. Held 10x the horizon, the watchdog must stay silent on
    // all three schedulers.
    let horizon = 500;
    let cfg = mesh_cfg(RetryConfig::default(), horizon);
    let hold = 10 * horizon;

    for lockstep in [false, true] {
        let mut c = cfg;
        c.lockstep = lockstep;
        let mut m = Alewife::new(c, stress_program());
        drive_sequential_until(&mut m, &SwitchSpin::default(), hold, hold + 1);
        assert!(
            Machine::now(&m) >= hold,
            "lockstep={lockstep}: machine stopped early"
        );
        assert!(
            Machine::fault(&m).is_none(),
            "lockstep={lockstep}: watchdog fired on a quiescent machine: {:?}",
            Machine::fault(&m)
        );
    }
    for workers in [1, 2, 4] {
        let mut c = cfg;
        c.workers = workers;
        let mut m = ParallelAlewife::new(c, stress_program());
        m.run_until(&SwitchSpin::default(), hold, hold + 1);
        assert!(m.now() >= hold, "workers={workers}: machine stopped early");
        assert!(
            m.fault().is_none(),
            "workers={workers}: watchdog fired on a quiescent machine: {:?}",
            m.fault()
        );
    }
}

#[test]
fn fail_stop_schedules_are_scheduler_invariant() {
    // A fail-stop plan (link kill + node kill with deterministic
    // onsets) must produce byte-identical semantic traces and the same
    // fault on lockstep, event-driven, and parallel at 1/2/4 workers.
    let plan = || {
        FaultPlan::new(0xfa11)
            .with_link_kill(killed_channel(), 300)
            .with_node_kill(3, 900)
    };
    let cfg = mesh_cfg(fast_retry(), 5_000);

    let run_seq = |lockstep: bool| {
        let mut c = cfg;
        c.lockstep = lockstep;
        let mut m = Alewife::new(c, stress_program());
        m.set_fault_plan(plan());
        m.attach_tracer(TraceConfig::default());
        for i in 0..m.num_procs() {
            m.cpu_mut(i).boot(0);
        }
        let fault = drive_sequential(&mut m, &SwitchSpin::default(), 2_000_000);
        (fault, semantic(m.collect_trace()), m.fault_stats())
    };
    let (ref_fault, ref_trace, ref_stats) = run_seq(true);
    assert!(ref_fault.is_some(), "kills must wedge this workload");
    assert!(ref_stats.failstop_drops > 0);

    let (f, t, s) = run_seq(false);
    assert_eq!(ref_fault, f, "event-driven fault diverged");
    assert_eq!(
        ref_trace.events(),
        t.events(),
        "event-driven trace diverged"
    );
    assert_eq!(ref_stats, s);

    for workers in [1, 2, 4] {
        let mut c = cfg;
        c.workers = workers;
        let mut m = ParallelAlewife::new(c, stress_program());
        m.set_fault_plan(plan());
        m.attach_tracer(TraceConfig::default());
        for i in 0..m.num_procs() {
            m.cpu_mut(i).boot(0);
        }
        let fault = m.run(&SwitchSpin::default(), 2_000_000);
        assert_eq!(ref_fault, fault, "x{workers}: fault diverged");
        assert_eq!(
            ref_trace.events(),
            semantic(m.collect_trace()).events(),
            "x{workers}: trace diverged"
        );
        assert_eq!(
            ref_stats,
            m.fault_stats(),
            "x{workers}: fault stats diverged"
        );
    }
}

#[test]
fn bounded_recovery_soak() {
    // Every single directed-link kill on the 2x2 mesh leaves the mesh
    // connected, so recovery must always succeed — try a few channels
    // and seeds and insist on the workload's result every time.
    let channels = [
        Channel {
            node: 0,
            dim: 0,
            plus: true,
        },
        Channel {
            node: 1,
            dim: 1,
            plus: true,
        },
        Channel {
            node: 2,
            dim: 1,
            plus: false,
        },
    ];
    for (i, ch) in channels.iter().enumerate() {
        let seed = 0x50a0_u64.wrapping_add(i as u64);
        let mut m = Alewife::new(mesh_cfg(fast_retry(), 20_000), stress_program());
        m.set_fault_plan(FaultPlan::new(seed).with_link_kill(*ch, 250));
        for k in 0..m.num_procs() {
            m.cpu_mut(k).boot(0);
        }
        let mut mgr = RecoveryManager::new(RecoveryConfig {
            checkpoint_interval: 500,
            ring_capacity: 8,
            max_attempts: 6,
            max_cycles: 4_000_000,
        });
        let report = mgr.run(&mut m, &SwitchSpin::default());
        assert!(
            report.recovered,
            "soak {i} (kill {ch:?}): {:?}",
            report.failure
        );
        for n in 0..4u32 {
            assert_eq!(
                m.mem().read(0x200 + 4 * n),
                april_core::word::Word::fixnum(50),
                "soak {i}: node {n}'s count corrupted"
            );
        }
        let s = mgr.stats_section();
        assert!(s.get_counter("rollbacks").unwrap_or(0) >= 1);
        assert!(s.get_counter("checkpoints_taken").unwrap_or(0) >= 1);
    }
}

#[test]
fn quarantine_with_no_alive_route_dead_letters_with_typed_post_mortem() {
    // Quarantining every link out of node 1 makes its traffic
    // undeliverable: the run must end in a typed post-mortem naming
    // the dead letters, not a silent hang (and not a panic).
    let mut m = Alewife::new(
        mesh_cfg(RetryConfig::disabled(), 1_000),
        single_reader_program(),
    );
    // Node 1's only links: -x back to 0 and +y up to 3.
    m.quarantine_channel(Channel {
        node: 1,
        dim: 0,
        plus: false,
    });
    m.quarantine_channel(Channel {
        node: 1,
        dim: 1,
        plus: true,
    });
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    let fault = drive_sequential(&mut m, &SwitchSpin::default(), 2_000_000);
    let Some(MachineFault::NoForwardProgress(pm)) = fault else {
        panic!("expected a watchdog post-mortem, got {fault:?}");
    };
    assert!(
        !pm.undeliverable.is_empty(),
        "post-mortem lost the dead letters: {pm}"
    );
    assert!(pm.fault_stats.dead_letters > 0);
    assert!(pm.to_string().contains("undeliverable messages"));
}
