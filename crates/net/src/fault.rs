//! Deterministic fault injection for the network simulator.
//!
//! A [`FaultPlan`] decides, for every packet/channel crossing, whether
//! the packet is dropped, duplicated, or delayed, and whether the
//! channel is inside a transient outage window. Decisions are pure
//! hashes of `(seed, packet id, hop, channel)` via splitmix64, so a
//! fault schedule is exactly reproducible from the seed and is
//! independent of event-processing order: replaying the same sends
//! yields bit-identical faults.
//!
//! Faults apply at channel granularity: a per-plan default
//! [`FaultRule`] can be overridden per channel, and outage windows
//! stall any packet that tries to cross the channel until the window
//! closes. Loopback (self-send) traffic never crosses a channel and is
//! never faulted.

use crate::topology::Channel;
use april_util::splitmix64;
use std::collections::{HashMap, HashSet};

/// Per-channel fault probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// Probability a packet crossing the channel is dropped.
    pub drop: f64,
    /// Probability a packet crossing the channel forks a duplicate.
    pub dup: f64,
    /// Probability a packet crossing the channel is delayed.
    pub delay: f64,
    /// Maximum extra delay in cycles (uniform in `1..=max_delay`).
    pub max_delay: u64,
}

impl FaultRule {
    /// A rule that never faults.
    pub const NONE: FaultRule = FaultRule {
        drop: 0.0,
        dup: 0.0,
        delay: 0.0,
        max_delay: 0,
    };

    /// Uniform loss: drop with probability `p`.
    pub fn drop(p: f64) -> FaultRule {
        FaultRule {
            drop: p,
            ..FaultRule::NONE
        }
    }

    /// Uniform duplication: fork with probability `p`.
    pub fn dup(p: f64) -> FaultRule {
        FaultRule {
            dup: p,
            ..FaultRule::NONE
        }
    }

    /// Uniform jitter: delay with probability `p` by up to `max` cycles.
    pub fn delay(p: f64, max: u64) -> FaultRule {
        FaultRule {
            delay: p,
            max_delay: max,
            ..FaultRule::NONE
        }
    }

    fn is_none(&self) -> bool {
        self.drop <= 0.0 && self.dup <= 0.0 && self.delay <= 0.0
    }
}

/// A transient link failure: the channel is unusable in `start..end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// First cycle of the outage.
    pub start: u64,
    /// First cycle after the outage (packets resume crossing here).
    pub end: u64,
}

/// Counts of injected faults, for post-mortems and soak assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets removed from the network mid-flight.
    pub dropped: u64,
    /// Extra packet copies forked mid-flight.
    pub duplicated: u64,
    /// Channel crossings given extra latency.
    pub delayed: u64,
    /// Crossings stalled until an outage window closed.
    pub outage_stalls: u64,
    /// Packets silently swallowed by a fail-stopped link or node. The
    /// router does not know about fail-stop faults, so these losses
    /// look exactly like wedged protocol transactions from above —
    /// until a post-mortem diagnoses them.
    pub failstop_drops: u64,
    /// Packets with no alive route to their destination under the
    /// current quarantine (typed loss, recorded as a dead letter).
    pub dead_letters: u64,
}

impl FaultStats {
    /// Total number of injected fault events.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.duplicated
            + self.delayed
            + self.outage_stalls
            + self.failstop_drops
            + self.dead_letters
    }
}

/// What the plan decided for one packet/channel crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Cross normally.
    Pass,
    /// Remove the packet from the network.
    Drop,
    /// Cross, and also fork an identical copy from the current node.
    Duplicate,
    /// Cross with this many extra cycles of header latency.
    Delay(u64),
    /// The channel is down; retry the crossing at this cycle.
    StallUntil(u64),
}

/// A deterministic, seeded schedule of network faults.
///
/// # Examples
///
/// ```
/// use april_net::fault::{FaultPlan, FaultRule};
///
/// let plan = FaultPlan::new(0x5eed).with_default_rule(FaultRule::drop(0.01));
/// assert!(!plan.is_inert());
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    pub(crate) seed: u64,
    pub(crate) default_rule: FaultRule,
    pub(crate) per_channel: HashMap<Channel, FaultRule>,
    pub(crate) outages: HashMap<Channel, Vec<Outage>>,
    /// Permanent link kills: from the onset cycle on, every packet that
    /// tries to cross the channel is silently swallowed. Unlike an
    /// outage, a kill never ends and the router is not told about it —
    /// the protocol above experiences it as a wedge.
    pub(crate) link_kills: HashMap<Channel, u64>,
    /// Permanent node fail-stops: from the onset cycle on, every packet
    /// at, through, or destined to the node is silently swallowed.
    pub(crate) node_kills: HashMap<usize, u64>,
    /// Channels the router must avoid (the *known-dead* set derived by
    /// recovery). Quarantined channels are excluded from route search;
    /// destinations with no alive route become typed dead letters.
    pub(crate) quarantined_channels: HashSet<Channel>,
    /// Nodes the router must avoid routing through or to.
    pub(crate) quarantined_nodes: HashSet<usize>,
}

// The parallel machine's coordinator owns the network (and thus the
// plan) while worker threads run; the plan must stay `Send`.
const _: () = april_util::assert_send::<FaultPlan>();

impl FaultPlan {
    /// A plan with the given seed and no faults configured.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            default_rule: FaultRule::NONE,
            per_channel: HashMap::new(),
            outages: HashMap::new(),
            link_kills: HashMap::new(),
            node_kills: HashMap::new(),
            quarantined_channels: HashSet::new(),
            quarantined_nodes: HashSet::new(),
        }
    }

    /// Sets the rule applied to every channel without an override.
    pub fn with_default_rule(mut self, rule: FaultRule) -> FaultPlan {
        self.default_rule = rule;
        self
    }

    /// Overrides the rule for one channel.
    pub fn with_channel_rule(mut self, ch: Channel, rule: FaultRule) -> FaultPlan {
        self.per_channel.insert(ch, rule);
        self
    }

    /// Adds a transient outage window on one channel.
    pub fn with_outage(mut self, ch: Channel, start: u64, end: u64) -> FaultPlan {
        assert!(start < end, "empty outage window");
        self.outages
            .entry(ch)
            .or_default()
            .push(Outage { start, end });
        self
    }

    /// Schedules a permanent link kill: from cycle `onset` on, packets
    /// crossing `ch` are silently swallowed (a fail-stop fault the
    /// router does not know about).
    pub fn with_link_kill(mut self, ch: Channel, onset: u64) -> FaultPlan {
        self.link_kills.insert(ch, onset);
        self
    }

    /// Schedules a permanent node fail-stop: from cycle `onset` on,
    /// packets at, through, or destined to `node` are silently
    /// swallowed (including loopback traffic — the whole node is dead).
    pub fn with_node_kill(mut self, node: usize, onset: u64) -> FaultPlan {
        self.node_kills.insert(node, onset);
        self
    }

    /// Quarantines a channel: the router avoids it from now on
    /// (builder form of [`FaultPlan::quarantine_channel`]).
    pub fn with_quarantined_channel(mut self, ch: Channel) -> FaultPlan {
        self.quarantined_channels.insert(ch);
        self
    }

    /// Quarantines a node (builder form of
    /// [`FaultPlan::quarantine_node`]).
    pub fn with_quarantined_node(mut self, node: usize) -> FaultPlan {
        self.quarantined_nodes.insert(node);
        self
    }

    /// Marks a channel as known-dead: the router stops using it.
    pub fn quarantine_channel(&mut self, ch: Channel) {
        self.quarantined_channels.insert(ch);
    }

    /// Marks a node as known-dead: the router stops routing through or
    /// to it.
    pub fn quarantine_node(&mut self, node: usize) {
        self.quarantined_nodes.insert(node);
    }

    /// True if the fail-stop schedule has killed channel `ch` by `now`.
    pub fn link_killed(&self, ch: Channel, now: u64) -> bool {
        self.link_kills.get(&ch).is_some_and(|&onset| onset <= now)
    }

    /// True if the fail-stop schedule has killed `node` by `now`.
    pub fn node_killed(&self, node: usize, now: u64) -> bool {
        self.node_kills
            .get(&node)
            .is_some_and(|&onset| onset <= now)
    }

    /// True if channel `ch` is in the quarantine avoidance set.
    pub fn channel_quarantined(&self, ch: Channel) -> bool {
        self.quarantined_channels.contains(&ch)
    }

    /// True if `node` is in the quarantine avoidance set.
    pub fn node_quarantined(&self, node: usize) -> bool {
        self.quarantined_nodes.contains(&node)
    }

    /// True if any channel or node is quarantined (the router then
    /// switches from dimension-order to avoidance routing).
    pub fn has_quarantine(&self) -> bool {
        !self.quarantined_channels.is_empty() || !self.quarantined_nodes.is_empty()
    }

    /// True if the plan schedules any permanent fail-stop fault.
    pub fn has_fail_stop(&self) -> bool {
        !self.link_kills.is_empty() || !self.node_kills.is_empty()
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True if the plan can never inject a fault (fault-free baseline).
    pub fn is_inert(&self) -> bool {
        self.default_rule.is_none()
            && self.per_channel.values().all(FaultRule::is_none)
            && self.outages.is_empty()
            && !self.has_fail_stop()
            && !self.has_quarantine()
    }

    fn rule_for(&self, ch: Channel) -> FaultRule {
        self.per_channel
            .get(&ch)
            .copied()
            .unwrap_or(self.default_rule)
    }

    /// A unit-interval sample that is a pure function of its inputs.
    fn sample(&self, packet: u64, hop: u64, ch: Channel, salt: u64) -> f64 {
        let mut h = splitmix64(self.seed ^ splitmix64(packet));
        h = splitmix64(h ^ hop);
        h = splitmix64(h ^ channel_key(ch));
        h = splitmix64(h ^ salt);
        // 53 mantissa bits → uniform in [0, 1).
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Decides the fate of packet `packet` making its `hop`-th crossing,
    /// over channel `ch` at time `now`. `may_dup` is false for packets
    /// that are themselves duplicates (duplication does not compound).
    pub(crate) fn decide(
        &self,
        packet: u64,
        hop: u64,
        ch: Channel,
        now: u64,
        may_dup: bool,
    ) -> Verdict {
        if let Some(win) = self.outages.get(&ch) {
            if let Some(o) = win.iter().find(|o| o.start <= now && now < o.end) {
                return Verdict::StallUntil(o.end);
            }
        }
        let rule = self.rule_for(ch);
        if rule.is_none() {
            return Verdict::Pass;
        }
        if rule.drop > 0.0 && self.sample(packet, hop, ch, 0xd509) < rule.drop {
            return Verdict::Drop;
        }
        if may_dup && rule.dup > 0.0 && self.sample(packet, hop, ch, 0xd0b1) < rule.dup {
            return Verdict::Duplicate;
        }
        if rule.delay > 0.0
            && rule.max_delay > 0
            && self.sample(packet, hop, ch, 0xde1a) < rule.delay
        {
            let r = splitmix64(self.seed ^ splitmix64(packet ^ 0xde1a) ^ hop.wrapping_mul(0x9e37));
            return Verdict::Delay(1 + r % rule.max_delay);
        }
        Verdict::Pass
    }
}

/// Folds a channel into a stable 64-bit key for hashing.
fn channel_key(ch: Channel) -> u64 {
    let dir = ch.plus as u64;
    splitmix64((ch.node as u64) << 20 | (ch.dim as u64) << 1 | dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(node: usize) -> Channel {
        Channel {
            node,
            dim: 0,
            plus: true,
        }
    }

    #[test]
    fn decisions_are_pure_functions() {
        let plan = FaultPlan::new(7).with_default_rule(FaultRule {
            drop: 0.1,
            dup: 0.1,
            delay: 0.2,
            max_delay: 8,
        });
        for p in 0..64 {
            for hop in 0..4 {
                let a = plan.decide(p, hop, ch(3), 100, true);
                let b = plan.decide(p, hop, ch(3), 100, true);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn seed_changes_the_schedule() {
        let mk = |seed| {
            let plan = FaultPlan::new(seed).with_default_rule(FaultRule::drop(0.3));
            (0..256)
                .map(|p| plan.decide(p, 0, ch(0), 0, true))
                .collect::<Vec<_>>()
        };
        assert_ne!(
            mk(1),
            mk(2),
            "distinct seeds should give distinct schedules"
        );
        assert_eq!(mk(9), mk(9));
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = FaultPlan::new(0xfeed).with_default_rule(FaultRule::drop(0.25));
        let n = 10_000;
        let drops = (0..n)
            .filter(|&p| plan.decide(p, 0, ch(1), 0, true) == Verdict::Drop)
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "drop rate {rate} far from 0.25");
    }

    #[test]
    fn channel_rules_override_default() {
        let plan = FaultPlan::new(5)
            .with_default_rule(FaultRule::NONE)
            .with_channel_rule(ch(2), FaultRule::drop(1.0));
        assert_eq!(plan.decide(0, 0, ch(2), 0, true), Verdict::Drop);
        assert_eq!(plan.decide(0, 0, ch(3), 0, true), Verdict::Pass);
    }

    #[test]
    fn outages_stall_until_end() {
        let plan = FaultPlan::new(5).with_outage(ch(1), 10, 20);
        assert_eq!(plan.decide(0, 0, ch(1), 9, true), Verdict::Pass);
        assert_eq!(plan.decide(0, 0, ch(1), 10, true), Verdict::StallUntil(20));
        assert_eq!(plan.decide(0, 0, ch(1), 19, true), Verdict::StallUntil(20));
        assert_eq!(plan.decide(0, 0, ch(1), 20, true), Verdict::Pass);
    }

    #[test]
    fn inert_plans_know_it() {
        assert!(FaultPlan::new(1).is_inert());
        assert!(!FaultPlan::new(1)
            .with_default_rule(FaultRule::dup(0.01))
            .is_inert());
        assert!(!FaultPlan::new(1).with_outage(ch(0), 0, 1).is_inert());
    }

    #[test]
    fn kills_honor_their_onset_cycle() {
        let plan = FaultPlan::new(1)
            .with_link_kill(ch(0), 100)
            .with_node_kill(3, 250);
        assert!(!plan.link_killed(ch(0), 99));
        assert!(plan.link_killed(ch(0), 100));
        assert!(plan.link_killed(ch(0), u64::MAX));
        assert!(!plan.link_killed(ch(1), u64::MAX));
        assert!(!plan.node_killed(3, 249));
        assert!(plan.node_killed(3, 250));
        assert!(!plan.node_killed(2, u64::MAX));
    }

    #[test]
    fn quarantine_flags_and_inertness() {
        let mut plan = FaultPlan::new(1);
        assert!(plan.is_inert() && !plan.has_quarantine());
        plan.quarantine_channel(ch(2));
        assert!(plan.has_quarantine() && plan.channel_quarantined(ch(2)));
        assert!(!plan.channel_quarantined(ch(3)));
        assert!(!plan.is_inert());
        let plan = FaultPlan::new(1).with_quarantined_node(5);
        assert!(plan.node_quarantined(5) && !plan.node_quarantined(4));
        assert!(!plan.is_inert());
        assert!(!FaultPlan::new(1).with_link_kill(ch(0), 0).is_inert());
        assert!(!FaultPlan::new(1).with_node_kill(0, 0).is_inert());
        assert!(FaultPlan::new(1).with_node_kill(0, 0).has_fail_stop());
    }

    #[test]
    fn duplicates_may_not_compound() {
        let plan = FaultPlan::new(3).with_default_rule(FaultRule::dup(1.0));
        assert_eq!(plan.decide(7, 0, ch(0), 0, true), Verdict::Duplicate);
        assert_eq!(plan.decide(7, 0, ch(0), 0, false), Verdict::Pass);
    }
}
