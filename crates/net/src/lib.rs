//! # april-net — the ALEWIFE interconnection network
//!
//! A deterministic simulator for the low-dimension direct network of
//! the ALEWIFE machine (paper, Section 2.1): a k-ary n-cube with
//! bidirectional channels, dimension-order routing, virtual-cut-through
//! switching, and finite channel bandwidth (so contention emerges as
//! queueing for busy channels).
//!
//! * [`topology`] — coordinates, distances, dimension-order routing.
//! * [`network`] — the packet-level event simulator and its statistics
//!   (average latency, hops, channel utilization), used to validate the
//!   analytical network model of Section 8.
//! * [`fault`] — deterministic seeded fault injection (packet drop,
//!   duplication, delay, transient link outages) for robustness testing
//!   of the coherence protocol and run-time system above.
//! * [`snapshot`] — wire encoding of the complete network state
//!   (event heap, in-flight packets, channel reservations, fault plan)
//!   for machine checkpoints (DESIGN.md §11).

#![warn(missing_docs)]

pub mod fault;
pub mod network;
pub mod snapshot;
pub mod topology;

pub use fault::{FaultPlan, FaultRule, FaultStats, Outage};
pub use network::{NetConfig, NetStats, Network};
pub use topology::{Channel, Topology, TopologyError};
