//! The packet-switched direct network simulator.
//!
//! Packets cut through the network virtual-cut-through style: a header
//! flit advances one hop per cycle when channels are free; each channel
//! along the path is occupied for the packet's full length in flits, so
//! an unloaded packet of size B crossing h hops is delivered after
//! roughly `h + B` cycles, and contention appears as queueing for busy
//! channels — the behavior the network model of Section 8 captures
//! analytically.
//!
//! The simulator is deterministic: events are ordered by (time,
//! sequence number), and ties resolve in send order.

use crate::fault::{FaultPlan, FaultStats, Verdict};
use crate::topology::{Channel, Topology};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Packet ids with this bit set are fault-injected duplicates; they
/// draw from a separate counter so primary ids (and therefore primary
/// fault decisions) depend only on send order, and so duplicates never
/// themselves duplicate.
const DUP_BIT: u64 = 1 << 63;

/// Network timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Cycles for a header to traverse one router/channel stage.
    pub hop_latency: u64,
    /// Latency of a node sending to itself (loopback through the
    /// network interface).
    pub loopback_latency: u64,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            hop_latency: 1,
            loopback_latency: 1,
        }
    }
}

/// Aggregate network statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetStats {
    /// Packets delivered.
    pub delivered: u64,
    /// Sum of end-to-end packet latencies (cycles).
    pub total_latency: u64,
    /// Sum of hop counts.
    pub total_hops: u64,
    /// Sum of flit·cycles of channel occupancy (for utilization).
    pub busy_flit_cycles: u64,
}

impl NetStats {
    /// Mean end-to-end latency per delivered packet.
    pub fn avg_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }

    /// Mean hops per delivered packet.
    pub fn avg_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }

    /// Mean channel utilization over `elapsed` cycles and
    /// `num_channels` channels.
    pub fn channel_utilization(&self, num_channels: usize, elapsed: u64) -> f64 {
        if elapsed == 0 || num_channels == 0 {
            0.0
        } else {
            self.busy_flit_cycles as f64 / (num_channels as f64 * elapsed as f64)
        }
    }
}

#[derive(Debug)]
struct Flight<P> {
    dst: usize,
    size: u64,
    sent_at: u64,
    hops: u64,
    payload: P,
}

/// An event: packet `id`'s header arrives at `node` at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: u64,
    seq: u64,
    id: u64,
    node: usize,
}

/// The interconnection network, generic over the payload type.
///
/// # Examples
///
/// ```
/// use april_net::network::{NetConfig, Network};
/// use april_net::topology::Topology;
///
/// let mut net: Network<&str> = Network::new(Topology::new(2, 4), NetConfig::default());
/// net.send(0, 0, 15, 4, "hello");
/// let mut t = 0;
/// loop {
///     let d = net.poll(t);
///     if !d.is_empty() {
///         assert_eq!(d[0], (15, "hello"));
///         break;
///     }
///     t += 1;
/// }
/// // 6 hops + 4 flits: delivered by cycle 10.
/// assert!(t <= 10);
/// ```
#[derive(Debug)]
pub struct Network<P> {
    topo: Topology,
    cfg: NetConfig,
    events: BinaryHeap<Reverse<Event>>,
    flights: HashMap<u64, Flight<P>>,
    channel_free: HashMap<Channel, u64>,
    ready: VecDeque<(u64, usize, u64)>, // (deliver_time, dst, id)
    next_id: u64,
    next_dup_id: u64,
    seq: u64,
    fault: Option<FaultPlan>,
    /// Aggregate statistics.
    pub stats: NetStats,
    /// Counts of injected faults (all zero without a fault plan).
    pub fault_stats: FaultStats,
}

impl<P> Network<P> {
    /// Creates an idle network.
    pub fn new(topo: Topology, cfg: NetConfig) -> Network<P> {
        Network {
            topo,
            cfg,
            events: BinaryHeap::new(),
            flights: HashMap::new(),
            channel_free: HashMap::new(),
            ready: VecDeque::new(),
            next_id: 0,
            next_dup_id: 0,
            seq: 0,
            fault: None,
            stats: NetStats::default(),
            fault_stats: FaultStats::default(),
        }
    }

    /// Creates an idle network with a fault-injection plan installed.
    pub fn with_faults(topo: Topology, cfg: NetConfig, plan: FaultPlan) -> Network<P> {
        let mut net = Network::new(topo, cfg);
        net.fault = Some(plan);
        net
    }

    /// Installs (or, with `None`, removes) a fault plan mid-run.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of packets currently in flight.
    pub fn in_flight_count(&self) -> usize {
        self.flights.len()
    }

    /// In-flight packets as `(id, dst, sent_at, hops, payload)`, in
    /// arbitrary order. Callers building a post-mortem sort the owned
    /// snapshot themselves; nothing is rebuilt or sorted here, so the
    /// accessor is safe to call on hot paths.
    pub fn in_flight_packets(&self) -> impl Iterator<Item = (u64, usize, u64, u64, &P)> + '_ {
        self.flights
            .iter()
            .map(|(&id, f)| (id, f.dst, f.sent_at, f.hops, &f.payload))
    }

    /// Injects a packet of `size` flits at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `src`/`dst` are out of range or `size` is zero.
    pub fn send(&mut self, now: u64, src: usize, dst: usize, size: u64, payload: P) {
        assert!(src < self.topo.num_nodes() && dst < self.topo.num_nodes());
        assert!(size > 0, "empty packet");
        let id = self.next_id;
        self.next_id += 1;
        self.flights.insert(
            id,
            Flight {
                dst,
                size,
                sent_at: now,
                hops: 0,
                payload,
            },
        );
        self.push_event(now, id, src);
    }

    fn push_event(&mut self, time: u64, id: u64, node: usize) {
        self.seq += 1;
        self.events.push(Reverse(Event {
            time,
            seq: self.seq,
            id,
            node,
        }));
    }

    /// Advances the simulation to `now` and returns packets delivered
    /// by then, in deterministic order.
    ///
    /// Requires `P: Clone` so a fault plan can fork duplicate packets;
    /// without a plan no clone ever happens.
    pub fn poll(&mut self, now: u64) -> Vec<(usize, P)>
    where
        P: Clone,
    {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    /// [`Network::poll`], appending deliveries onto a caller-supplied
    /// buffer so a machine's cycle loop can reuse scratch storage.
    pub fn poll_into(&mut self, now: u64, out: &mut Vec<(usize, P)>)
    where
        P: Clone,
    {
        while let Some(&Reverse(ev)) = self.events.peek() {
            if ev.time > now {
                break;
            }
            self.events.pop();
            self.advance(ev);
        }
        while let Some(&(t, _, _)) = self.ready.front() {
            if t > now {
                break;
            }
            let (_, dst, id) = self.ready.pop_front().expect("checked nonempty");
            let flight = self.flights.remove(&id).expect("flight exists");
            out.push((dst, flight.payload));
        }
    }

    fn advance(&mut self, ev: Event)
    where
        P: Clone,
    {
        let flight = self.flights.get(&ev.id).expect("flight exists");
        let (dst, size, hops, sent_at) = (flight.dst, flight.size, flight.hops, flight.sent_at);
        if ev.node == dst {
            // Header arrived; the tail needs size-1 more cycles (or
            // loopback latency for self-sends that never hopped).
            let tail = if hops == 0 {
                ev.time + self.cfg.loopback_latency
            } else {
                ev.time + size.saturating_sub(1)
            };
            self.stats.delivered += 1;
            self.stats.total_latency += tail - sent_at;
            self.stats.total_hops += hops;
            // Insert keeping deliver-time order (events are processed
            // in time order, so tails are nearly sorted; fix up local
            // inversions caused by differing sizes).
            let pos = self
                .ready
                .iter()
                .position(|&(t, _, _)| t > tail)
                .unwrap_or(self.ready.len());
            self.ready.insert(pos, (tail, dst, ev.id));
            return;
        }
        let (ch, next) = self.topo.next_hop(ev.node, dst).expect("not at dst");
        let mut extra = 0;
        if let Some(plan) = &self.fault {
            match plan.decide(ev.id, hops, ch, ev.time, ev.id & DUP_BIT == 0) {
                Verdict::Pass => {}
                Verdict::Drop => {
                    self.flights.remove(&ev.id);
                    self.fault_stats.dropped += 1;
                    return;
                }
                Verdict::StallUntil(t) => {
                    // The link is down; retry the crossing when the
                    // outage window closes.
                    self.fault_stats.outage_stalls += 1;
                    self.push_event(t, ev.id, ev.node);
                    return;
                }
                Verdict::Duplicate => {
                    self.fault_stats.duplicated += 1;
                    let dup_id = DUP_BIT | self.next_dup_id;
                    self.next_dup_id += 1;
                    let payload = self
                        .flights
                        .get(&ev.id)
                        .expect("flight exists")
                        .payload
                        .clone();
                    self.flights.insert(
                        dup_id,
                        Flight {
                            dst,
                            size,
                            sent_at: ev.time,
                            hops,
                            payload,
                        },
                    );
                    self.push_event(ev.time, dup_id, ev.node);
                }
                Verdict::Delay(d) => {
                    self.fault_stats.delayed += 1;
                    extra = d;
                }
            }
        }
        let free = self.channel_free.get(&ch).copied().unwrap_or(0);
        let start = ev.time.max(free);
        self.channel_free.insert(ch, start + size);
        self.stats.busy_flit_cycles += size;
        self.flights.get_mut(&ev.id).expect("flight exists").hops += 1;
        let arrive = start + self.cfg.hop_latency + extra;
        self.push_event(arrive, ev.id, next);
    }

    /// True if no packets are in flight.
    pub fn is_idle(&self) -> bool {
        self.flights.is_empty()
    }

    /// Number of packets in flight.
    pub fn in_flight(&self) -> usize {
        self.flights.len()
    }

    /// The time of the next internal event, if any (lets a machine skip
    /// quiet cycles).
    pub fn next_event_time(&self) -> Option<u64> {
        let ev = self.events.peek().map(|Reverse(e)| e.time);
        let rd = self.ready.front().map(|&(t, _, _)| t);
        match (ev, rd) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// The earliest cycle at which a packet will be handed to its
    /// destination, routing in-flight packets forward as far as needed
    /// to find out.
    ///
    /// Hop traversal is simulated with one internal event per channel
    /// crossing, so [`Network::next_event_time`] can never see past the
    /// next hop — an event-driven machine stepping by it crawls through
    /// transit cycle by cycle. This accessor instead *processes* those
    /// internal events (in the same deterministic `(time, seq)` order
    /// `poll` would) until the earliest pending delivery time is known,
    /// and returns it without delivering anything.
    ///
    /// # Safety contract (logical, not memory)
    ///
    /// The caller must guarantee that no `send` will be issued before
    /// `min(bound, returned time)` — routing decisions (channel
    /// occupancy, fault verdicts) are made in event order, so traffic
    /// injected earlier than an already-routed hop would be reordered
    /// against it. The ALEWIFE machine guarantees this by passing the
    /// earliest cycle any non-network component can act as `bound`:
    /// while every processor is stalled and every retransmit deadline
    /// is in the future, only a delivery (which this accessor stops at)
    /// can trigger new traffic. Events beyond `bound` are left queued.
    pub fn earliest_delivery(&mut self, bound: u64) -> Option<u64>
    where
        P: Clone,
    {
        loop {
            if let Some(&(t, _, _)) = self.ready.front() {
                // Tails are never earlier than the event that created
                // them, so once the front-of-queue delivery is at or
                // before the next unrouted event nothing can beat it.
                if self.events.peek().is_none_or(|&Reverse(e)| t <= e.time) {
                    return Some(t);
                }
            }
            match self.events.peek() {
                Some(&Reverse(ev)) if ev.time <= bound => {
                    self.events.pop();
                    self.advance(ev);
                }
                _ => return self.ready.front().map(|&(t, _, _)| t),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<P: Copy>(net: &mut Network<P>, until: u64) -> Vec<(u64, usize, P)> {
        let mut out = Vec::new();
        for t in 0..=until {
            for (dst, p) in net.poll(t) {
                out.push((t, dst, p));
            }
        }
        out
    }

    #[test]
    fn unloaded_latency_is_hops_plus_size() {
        let mut net: Network<u32> = Network::new(Topology::new(1, 8), NetConfig::default());
        // 0 -> 7: 7 hops, size 4: header 7 cycles, tail 3 more.
        net.send(0, 0, 7, 4, 42);
        let got = drain(&mut net, 100);
        assert_eq!(got, vec![(10, 7, 42)]);
        assert_eq!(net.stats.avg_hops(), 7.0);
        assert_eq!(net.stats.avg_latency(), 10.0);
    }

    #[test]
    fn loopback_delivery() {
        let mut net: Network<u32> = Network::new(Topology::new(2, 4), NetConfig::default());
        net.send(5, 3, 3, 4, 9);
        let got = drain(&mut net, 20);
        assert_eq!(got, vec![(6, 3, 9)]);
    }

    #[test]
    fn contention_serializes_on_shared_channel() {
        let mut net: Network<u32> = Network::new(Topology::new(1, 4), NetConfig::default());
        // Two packets from 0 to 1 at the same time share channel 0→1.
        net.send(0, 0, 1, 8, 1);
        net.send(0, 0, 1, 8, 2);
        let got = drain(&mut net, 100);
        assert_eq!(got.len(), 2);
        // First: start 0, arrive 1, tail at 8. Second: channel free at
        // 8, arrive 9, tail at 16.
        assert_eq!(got[0].0, 8);
        assert_eq!(got[1].0, 16);
        assert_eq!(got[0].2, 1, "FIFO order preserved");
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let mut net: Network<u32> = Network::new(Topology::new(2, 4), NetConfig::default());
        net.send(0, 0, 1, 4, 1); // x+ channel from 0
        net.send(0, 4, 5, 4, 2); // x+ channel from 4 (different row)
        let got = drain(&mut net, 50);
        assert_eq!(got[0].0, got[1].0, "equal latency on disjoint paths");
    }

    #[test]
    fn many_packets_all_delivered() {
        let mut net: Network<usize> = Network::new(Topology::new(2, 4), NetConfig::default());
        let n = net.topology().num_nodes();
        for i in 0..100 {
            net.send((i % 7) as u64, i % n, (i * 5 + 3) % n, 4, i);
        }
        let got = drain(&mut net, 10_000);
        assert_eq!(got.len(), 100);
        assert!(net.is_idle());
        assert_eq!(net.stats.delivered, 100);
    }

    #[test]
    fn utilization_accounting() {
        let mut net: Network<u32> = Network::new(Topology::new(1, 2), NetConfig::default());
        net.send(0, 0, 1, 10, 1);
        drain(&mut net, 100);
        // One channel of two carried 10 flit-cycles.
        let u = net
            .stats
            .channel_utilization(net.topology().num_channels(), 100);
        assert!((u - 10.0 / 200.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_order() {
        let run = || {
            let mut net: Network<usize> = Network::new(Topology::new(2, 3), NetConfig::default());
            for i in 0..20 {
                net.send(0, i % 9, (i * 2) % 9, 3, i);
            }
            drain(&mut net, 1000)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn earliest_delivery_sees_past_hop_events() {
        let mut net: Network<u32> = Network::new(Topology::new(1, 8), NetConfig::default());
        // 0 -> 7: 7 hops + 3 tail cycles = delivered at 10, but the
        // next *internal* event is the first hop at cycle 0.
        net.send(0, 0, 7, 4, 42);
        assert_eq!(net.next_event_time(), Some(0));
        assert_eq!(net.earliest_delivery(u64::MAX), Some(10));
        // Routing ahead must not change what poll delivers, or when.
        assert!(net.poll(9).is_empty());
        assert_eq!(net.poll(10), vec![(7, 42)]);
        assert!(net.is_idle());
    }

    #[test]
    fn earliest_delivery_respects_bound() {
        let mut net: Network<u32> = Network::new(Topology::new(1, 8), NetConfig::default());
        net.send(0, 0, 7, 4, 42);
        // Nothing is deliverable by cycle 3; events past the bound must
        // stay queued so traffic injected at 4 still orders correctly.
        assert_eq!(net.earliest_delivery(3), None);
        assert!(net.next_event_time().expect("hops remain") >= 3);
        let got = drain(&mut net, 100);
        assert_eq!(got, vec![(10, 7, 42)]);
    }

    use crate::fault::{FaultPlan, FaultRule};

    fn faulty(plan: FaultPlan) -> Network<usize> {
        Network::with_faults(Topology::new(2, 4), NetConfig::default(), plan)
    }

    fn spray(net: &mut Network<usize>, n: usize) -> Vec<(u64, usize, usize)> {
        let nodes = net.topology().num_nodes();
        for i in 0..n {
            net.send((i % 11) as u64, i % nodes, (i * 7 + 3) % nodes, 4, i);
        }
        drain(net, 1_000_000)
    }

    #[test]
    fn drops_lose_packets_and_are_counted() {
        let mut net = faulty(FaultPlan::new(0xd0).with_default_rule(FaultRule::drop(0.2)));
        let got = spray(&mut net, 400);
        assert!(
            net.fault_stats.dropped > 0,
            "0.2 drop over 400 packets must drop some"
        );
        assert_eq!(got.len() as u64 + net.fault_stats.dropped, 400);
        assert!(net.is_idle(), "dropped packets must not linger in flight");
    }

    #[test]
    fn duplicates_arrive_twice_and_are_counted() {
        let mut net = faulty(FaultPlan::new(0xdb).with_default_rule(FaultRule::dup(0.2)));
        let got = spray(&mut net, 400);
        assert!(net.fault_stats.duplicated > 0);
        assert_eq!(got.len() as u64, 400 + net.fault_stats.duplicated);
        // Every duplicate is a bit-exact copy of some original.
        for &(_, dst, p) in &got {
            assert_eq!(dst, (p * 7 + 3) % net.topology().num_nodes());
        }
    }

    #[test]
    fn delays_slow_but_do_not_lose() {
        let mut clean = faulty(FaultPlan::new(1));
        let base = spray(&mut clean, 200);
        let mut net = faulty(FaultPlan::new(1).with_default_rule(FaultRule::delay(0.5, 32)));
        let got = spray(&mut net, 200);
        assert_eq!(got.len(), 200);
        assert!(net.fault_stats.delayed > 0);
        let sum = |v: &[(u64, usize, usize)]| v.iter().map(|&(t, ..)| t).sum::<u64>();
        assert!(sum(&got) > sum(&base), "jitter must increase total latency");
    }

    #[test]
    fn outage_stalls_crossing_until_window_ends() {
        let (ch, _) = Topology::new(1, 4).next_hop(0, 1).expect("hop exists");
        let mut net: Network<u32> = Network::with_faults(
            Topology::new(1, 4),
            NetConfig::default(),
            FaultPlan::new(7).with_outage(ch, 0, 50),
        );
        net.send(0, 0, 1, 4, 9);
        let got = drain(&mut net, 1000);
        assert_eq!(got.len(), 1);
        assert!(
            got[0].0 >= 50,
            "delivered at {} despite outage until 50",
            got[0].0
        );
        assert_eq!(net.fault_stats.outage_stalls, 1);
    }

    #[test]
    fn fault_schedule_is_reproducible() {
        let run = || {
            let plan = FaultPlan::new(0x5eed).with_default_rule(FaultRule {
                drop: 0.1,
                dup: 0.1,
                delay: 0.2,
                max_delay: 16,
            });
            let mut net = faulty(plan);
            let got = spray(&mut net, 300);
            (got, net.fault_stats)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn inert_plan_is_bit_identical_to_no_plan() {
        let mut plain: Network<usize> = Network::new(Topology::new(2, 4), NetConfig::default());
        let a = spray(&mut plain, 200);
        let mut inert = faulty(FaultPlan::new(42));
        let b = spray(&mut inert, 200);
        assert_eq!(a, b);
        assert_eq!(inert.fault_stats.total(), 0);
    }
}
