//! The packet-switched direct network simulator.
//!
//! Packets cut through the network virtual-cut-through style: a header
//! flit advances one hop per cycle when channels are free; each channel
//! along the path is occupied for the packet's full length in flits, so
//! an unloaded packet of size B crossing h hops is delivered after
//! roughly `h + B` cycles, and contention appears as queueing for busy
//! channels — the behavior the network model of Section 8 captures
//! analytically.
//!
//! The simulator is deterministic: events are ordered by (time,
//! sequence number), and ties resolve in send order.

use crate::fault::{FaultPlan, FaultStats, Verdict};
use crate::topology::{Channel, Topology};
use april_obs::{EventKind, Hist, Probe};
use april_util::hash::DetState;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Packet ids with this bit set are fault-injected duplicates; they
/// draw from a separate counter so primary ids (and therefore primary
/// fault decisions) depend only on send order, and so duplicates never
/// themselves duplicate.
const DUP_BIT: u64 = 1 << 63;

/// Network timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Cycles for a header to traverse one router/channel stage.
    pub hop_latency: u64,
    /// Latency of a node sending to itself (loopback through the
    /// network interface).
    pub loopback_latency: u64,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            hop_latency: 1,
            loopback_latency: 1,
        }
    }
}

/// Aggregate network statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetStats {
    /// Packets delivered.
    pub delivered: u64,
    /// Sum of end-to-end packet latencies (cycles).
    pub total_latency: u64,
    /// Sum of hop counts.
    pub total_hops: u64,
    /// Sum of flit·cycles of channel occupancy (for utilization).
    pub busy_flit_cycles: u64,
}

impl NetStats {
    /// Mean end-to-end latency per delivered packet.
    pub fn avg_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }

    /// Mean hops per delivered packet.
    pub fn avg_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }

    /// Mean channel utilization over `elapsed` cycles and
    /// `num_channels` channels.
    pub fn channel_utilization(&self, num_channels: usize, elapsed: u64) -> f64 {
        if elapsed == 0 || num_channels == 0 {
            0.0
        } else {
            self.busy_flit_cycles as f64 / (num_channels as f64 * elapsed as f64)
        }
    }
}

/// A packet the network had to give up on: under the current
/// quarantine there is no alive route to its destination (or the
/// destination itself is quarantined). Dead letters are the *typed*
/// form of loss — recorded with their payload, counted in
/// [`FaultStats::dead_letters`], and surfaced in machine post-mortems —
/// as opposed to the silent swallowing a fail-stop fault produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadLetter<P> {
    /// The packet's id.
    pub id: u64,
    /// The unreachable destination.
    pub dst: usize,
    /// The cycle the router gave up.
    pub at: u64,
    /// The undelivered payload.
    pub payload: P,
}

#[derive(Debug)]
pub(crate) struct Flight<P> {
    pub(crate) dst: usize,
    pub(crate) size: u64,
    pub(crate) sent_at: u64,
    pub(crate) hops: u64,
    pub(crate) payload: P,
}

/// One precomputed routing-table entry: the dimension-order next hop
/// from the row's source toward the column's destination. `next` is
/// `u32::MAX` on the (never consulted) diagonal.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RouteHop {
    next: u32,
    dim: u8,
    plus: bool,
}

/// Largest `n * n` for which the routing table is materialized. Beyond
/// this (e.g. the paper's 8000-processor analysis configuration) the
/// router falls back to computing hops digit by digit.
const ROUTE_TABLE_MAX: usize = 1 << 20;

/// An event: packet `id`'s header arrives at `node` at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Event {
    pub(crate) time: u64,
    pub(crate) seq: u64,
    pub(crate) id: u64,
    pub(crate) node: usize,
}

/// The interconnection network, generic over the payload type.
///
/// # Examples
///
/// ```
/// use april_net::network::{NetConfig, Network};
/// use april_net::topology::Topology;
///
/// let mut net: Network<&str> = Network::new(Topology::new(2, 4), NetConfig::default());
/// net.send(0, 0, 15, 4, "hello");
/// let mut d = Vec::new();
/// let mut t = 0;
/// while d.is_empty() {
///     net.poll_into(t, &mut d);
///     t += 1;
/// }
/// assert_eq!(d[0], (15, "hello"));
/// // 6 hops + 4 flits: delivered by cycle 10.
/// assert!(t <= 11);
/// ```
#[derive(Debug)]
pub struct Network<P> {
    pub(crate) topo: Topology,
    pub(crate) cfg: NetConfig,
    pub(crate) events: BinaryHeap<Reverse<Event>>,
    // Both hot maps use the deterministic multiply-mix hasher: they
    // are probed several times per routed hop, keyed by values the
    // simulator generates itself (sequential ids, small coordinates),
    // and every serialized view sorts keys — SipHash bought nothing.
    pub(crate) flights: HashMap<u64, Flight<P>, DetState>,
    pub(crate) channel_free: HashMap<Channel, u64, DetState>,
    pub(crate) ready: VecDeque<(u64, usize, u64)>, // (deliver_time, dst, id)
    pub(crate) next_id: u64,
    pub(crate) next_dup_id: u64,
    pub(crate) seq: u64,
    pub(crate) fault: Option<FaultPlan>,
    /// Aggregate statistics.
    pub stats: NetStats,
    /// Counts of injected faults (all zero without a fault plan).
    pub fault_stats: FaultStats,
    /// End-to-end delivery latency distribution (log2 buckets).
    /// Recorded unconditionally: hand-over order is deterministic, the
    /// merge is order-independent, and the cost is a few adds.
    pub(crate) latency_hist: Hist,
    /// Hop-count distribution of delivered packets.
    pub(crate) hops_hist: Hist,
    /// Packets that had no alive route under the quarantine, in the
    /// deterministic order the router gave up on them.
    pub(crate) dead_letters: Vec<DeadLetter<P>>,
    /// Trace recorder for the network lane (inert by default).
    pub(crate) probe: Probe,
    /// Dimension-order next hops, indexed `cur * route_stride + dst`:
    /// the per-channel-crossing routing decision becomes one table
    /// load instead of a mixed-radix digit peel (division chains on
    /// the hottest line in the simulator). A pure function of the
    /// immutable topology — derived state, never snapshotted — and
    /// empty for meshes too large to tabulate (the computed path is
    /// bit-identical, just slower).
    pub(crate) routes: Vec<RouteHop>,
    pub(crate) route_stride: usize,
}

impl<P> Network<P> {
    /// Creates an idle network.
    pub fn new(topo: Topology, cfg: NetConfig) -> Network<P> {
        let n = topo.num_nodes();
        let routes = if n * n <= ROUTE_TABLE_MAX {
            let mut t = Vec::with_capacity(n * n);
            for cur in 0..n {
                for dst in 0..n {
                    t.push(match topo.next_hop(cur, dst) {
                        Some((ch, next)) => RouteHop {
                            next: next as u32,
                            dim: ch.dim as u8,
                            plus: ch.plus,
                        },
                        None => RouteHop {
                            next: u32::MAX,
                            dim: 0,
                            plus: false,
                        },
                    });
                }
            }
            t
        } else {
            Vec::new()
        };
        Network {
            routes,
            route_stride: n,
            topo,
            cfg,
            events: BinaryHeap::new(),
            flights: HashMap::default(),
            channel_free: HashMap::default(),
            ready: VecDeque::new(),
            next_id: 0,
            next_dup_id: 0,
            seq: 0,
            fault: None,
            stats: NetStats::default(),
            fault_stats: FaultStats::default(),
            latency_hist: Hist::new(),
            hops_hist: Hist::new(),
            dead_letters: Vec::new(),
            probe: Probe::default(),
        }
    }

    /// Installs a trace recorder for the network lane.
    pub fn attach_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// The network's trace recorder.
    pub fn trace_probe(&self) -> &Probe {
        &self.probe
    }

    /// Distribution of end-to-end delivery latencies (log2 buckets).
    pub fn latency_hist(&self) -> &Hist {
        &self.latency_hist
    }

    /// Distribution of delivered packets' hop counts.
    pub fn hops_hist(&self) -> &Hist {
        &self.hops_hist
    }

    /// Creates an idle network with a fault-injection plan installed.
    pub fn with_faults(topo: Topology, cfg: NetConfig, plan: FaultPlan) -> Network<P> {
        let mut net = Network::new(topo, cfg);
        net.fault = Some(plan);
        net
    }

    /// Installs (or, with `None`, removes) a fault plan mid-run.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Mutable access to the fault plan, installing an inert seed-0
    /// plan first if none was configured — the recovery layer applies
    /// quarantines through this regardless of how the run was faulted.
    pub fn fault_plan_mut(&mut self) -> &mut FaultPlan {
        self.fault.get_or_insert_with(|| FaultPlan::new(0))
    }

    /// Packets the router had to give up on (no alive route under the
    /// quarantine), in the order it gave up.
    pub fn dead_letters(&self) -> &[DeadLetter<P>] {
        &self.dead_letters
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of packets currently in flight.
    pub fn in_flight_count(&self) -> usize {
        self.flights.len()
    }

    /// In-flight packets as `(id, dst, sent_at, hops, payload)`, in
    /// arbitrary order. Callers building a post-mortem sort the owned
    /// snapshot themselves; nothing is rebuilt or sorted here, so the
    /// accessor is safe to call on hot paths.
    pub fn in_flight_packets(&self) -> impl Iterator<Item = (u64, usize, u64, u64, &P)> + '_ {
        self.flights
            .iter()
            .map(|(&id, f)| (id, f.dst, f.sent_at, f.hops, &f.payload))
    }

    /// Injects a packet of `size` flits at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `src`/`dst` are out of range or `size` is zero.
    pub fn send(&mut self, now: u64, src: usize, dst: usize, size: u64, payload: P) {
        assert!(src < self.topo.num_nodes() && dst < self.topo.num_nodes());
        assert!(size > 0, "empty packet");
        let id = self.next_id;
        self.next_id += 1;
        self.flights.insert(
            id,
            Flight {
                dst,
                size,
                sent_at: now,
                hops: 0,
                payload,
            },
        );
        self.push_event(now, id, src);
    }

    fn push_event(&mut self, time: u64, id: u64, node: usize) {
        self.seq += 1;
        self.events.push(Reverse(Event {
            time,
            seq: self.seq,
            id,
            node,
        }));
    }

    /// Advances the simulation to `now` and appends packets delivered
    /// by then onto a caller-supplied buffer, in deterministic order —
    /// the buffer is reused by machine cycle loops so the hot path
    /// never allocates.
    ///
    /// Requires `P: Clone` so a fault plan can fork duplicate packets;
    /// without a plan no clone ever happens.
    pub fn poll_into(&mut self, now: u64, out: &mut Vec<(usize, P)>)
    where
        P: Clone,
    {
        self.route_until(now);
        while let Some(&(t, _, _)) = self.ready.front() {
            if t > now {
                break;
            }
            let (t, dst, id) = self.ready.pop_front().expect("checked nonempty");
            let flight = self.flights.remove(&id).expect("flight exists");
            self.count_delivery(t, &flight);
            out.push((dst, flight.payload));
        }
    }

    /// Processes queued routing events up to and including `bound`.
    fn route_until(&mut self, bound: u64)
    where
        P: Clone,
    {
        while let Some(&Reverse(ev)) = self.events.peek() {
            if ev.time > bound {
                break;
            }
            self.events.pop();
            self.advance(ev);
        }
    }

    /// Delivery statistics are charged when a packet is handed over
    /// (popped), not when its header first reaches the destination:
    /// hand-over order is deterministic in machine time, while header
    /// routing may run early under [`Network::earliest_delivery`], and
    /// the machine's forward-progress signature reads these counters.
    fn count_delivery(&mut self, tail: u64, flight: &Flight<P>) {
        self.stats.delivered += 1;
        self.stats.total_latency += tail - flight.sent_at;
        self.stats.total_hops += flight.hops;
        self.latency_hist.record(tail - flight.sent_at);
        self.hops_hist.record(flight.hops);
    }

    /// Pops every delivery due in the half-open window `[start, end)`,
    /// appending `(deliver_cycle, dst, payload)` in hand-over order.
    ///
    /// Routing events are processed only up to `start` — the
    /// conservative-window scheduler calls this at a window barrier,
    /// when traffic staged inside the window has not been injected yet,
    /// and an event at `start` or later could be ordered against those
    /// pending sends. Provided `end - start` does not exceed the
    /// [`Network::lookahead`] bound, every delivery inside the window
    /// has already completed its routing by `start`, so nothing due is
    /// missed. With `end == start + 1` this is exactly
    /// [`Network::poll_into`] (plus the delivery cycle).
    pub fn window_deliveries(&mut self, start: u64, end: u64, out: &mut Vec<(u64, usize, P)>)
    where
        P: Clone,
    {
        self.route_until(start);
        while let Some(&(t, _, _)) = self.ready.front() {
            if t >= end {
                break;
            }
            let (t, dst, id) = self.ready.pop_front().expect("checked nonempty");
            let flight = self.flights.remove(&id).expect("flight exists");
            self.count_delivery(t, &flight);
            out.push((t, dst, flight.payload));
        }
    }

    /// Processes queued routing events up to and including `bound`
    /// without handing anything over: drops and outage stalls due by
    /// `bound` are resolved, exactly as a per-cycle `poll` loop would
    /// have resolved them. The conservative-window scheduler calls this
    /// at a barrier *after* injecting the window's staged sends, so the
    /// machine's pending-work view (and a post-mortem's in-flight list)
    /// at the window's last cycle matches the sequential machine's.
    /// The same logical-ordering contract as
    /// [`Network::earliest_delivery`] applies: no later `send` may
    /// carry a time earlier than an event processed here.
    pub fn route_to(&mut self, bound: u64)
    where
        P: Clone,
    {
        self.route_until(bound);
    }

    /// The conservative-PDES lookahead: the widest time window `W` such
    /// that (a) a packet sent at cycle `t` can never be handed over
    /// before `t + W`, and (b) every hand-over inside a window of `W`
    /// cycles has finished routing by the window's start.
    ///
    /// Three terms bound it, given the smallest packet is `min_flits`
    /// flits (protocol messages are never smaller than 2: header +
    /// address):
    ///
    /// * loopback: a self-send is handed over `loopback_latency` cycles
    ///   after injection;
    /// * the topology: the closest distinct pair of nodes is
    ///   [`Topology::min_hop_distance`] channels apart, and a crossing
    ///   costs `hop_latency` per channel plus `min_flits - 1` tail
    ///   cycles;
    /// * routing completion: a cross-node hand-over at cycle `d` has
    ///   its last routing event at `d - (min_flits - 1)`, which must
    ///   not be later than the window start, so `W <= min_flits`.
    ///
    /// Returns 0 when the configuration admits no safe window (e.g. a
    /// zero loopback latency, under which a self-send is handed over in
    /// the cycle it was injected); callers requiring parallelism must
    /// reject such configurations.
    pub fn lookahead(&self, min_flits: u64) -> u64 {
        let tail = min_flits.saturating_sub(1);
        let cross = self.topo.min_hop_distance() * self.cfg.hop_latency + tail;
        self.cfg.loopback_latency.min(cross).min(min_flits)
    }

    /// Removes a packet that has no alive route and records it as a
    /// typed dead letter.
    fn dead_letter(&mut self, id: u64, dst: usize, at: u64) {
        let flight = self.flights.remove(&id).expect("flight exists");
        self.fault_stats.dead_letters += 1;
        self.probe
            .emit(at, EventKind::NetDeadLetter, id, dst as u64);
        self.dead_letters.push(DeadLetter {
            id,
            dst,
            at,
            payload: flight.payload,
        });
    }

    /// Silently swallows a packet at a fail-stopped link or node.
    fn fail_stop(&mut self, id: u64, at: u64, site: u64) {
        self.flights.remove(&id);
        self.fault_stats.failstop_drops += 1;
        self.probe.emit(at, EventKind::NetFailStop, id, site);
    }

    /// The fault-free dimension-order next hop, from the table when it
    /// was built, otherwise computed — identical results either way
    /// (the table is filled by [`Topology::next_hop`] itself).
    #[inline]
    fn route_hop(&self, cur: usize, dst: usize) -> Option<(Channel, usize)> {
        if self.routes.is_empty() {
            return self.topo.next_hop(cur, dst);
        }
        let h = self.routes[cur * self.route_stride + dst];
        if h.next == u32::MAX {
            return None;
        }
        Some((
            Channel {
                node: cur,
                dim: h.dim as usize,
                plus: h.plus,
            },
            h.next as usize,
        ))
    }

    fn advance(&mut self, ev: Event)
    where
        P: Clone,
    {
        let flight = self.flights.get(&ev.id).expect("flight exists");
        let (dst, size, hops) = (flight.dst, flight.size, flight.hops);
        if ev.node == dst {
            // Node-level faults apply to delivery (and loopback) too: a
            // quarantined destination is a typed dead letter, a
            // fail-stopped one swallows silently.
            if let Some(plan) = &self.fault {
                if plan.node_quarantined(dst) {
                    self.dead_letter(ev.id, dst, ev.time);
                    return;
                }
                if plan.node_killed(dst, ev.time) {
                    self.fail_stop(ev.id, ev.time, dst as u64);
                    return;
                }
            }
            // Header arrived; the tail needs size-1 more cycles (or
            // loopback latency for self-sends that never hopped).
            let tail = if hops == 0 {
                ev.time + self.cfg.loopback_latency
            } else {
                ev.time + size.saturating_sub(1)
            };
            // Insert keeping deliver-time order (events are processed
            // in time order, so tails are nearly sorted; fix up local
            // inversions caused by differing sizes).
            let pos = self
                .ready
                .iter()
                .position(|&(t, _, _)| t > tail)
                .unwrap_or(self.ready.len());
            self.ready.insert(pos, (tail, dst, ev.id));
            return;
        }
        // Routing: dimension order normally; minimal-detour avoidance
        // once a quarantine is in force. Fail-stop kills are *not*
        // avoided — the router does not know about them.
        let hop = match &self.fault {
            Some(plan) if plan.has_quarantine() => {
                let avoid = |ch: Channel, next: usize| {
                    plan.channel_quarantined(ch) || plan.node_quarantined(next)
                };
                self.topo.next_hop_avoiding(ev.node, dst, &avoid)
            }
            _ => self.route_hop(ev.node, dst),
        };
        let Some((ch, next)) = hop else {
            self.dead_letter(ev.id, dst, ev.time);
            return;
        };
        if let Some(plan) = &self.fault {
            if plan.link_killed(ch, ev.time)
                || plan.node_killed(ev.node, ev.time)
                || plan.node_killed(next, ev.time)
            {
                self.fail_stop(ev.id, ev.time, ch.node as u64);
                return;
            }
        }
        let mut extra = 0;
        if let Some(plan) = &self.fault {
            match plan.decide(ev.id, hops, ch, ev.time, ev.id & DUP_BIT == 0) {
                Verdict::Pass => {}
                Verdict::Drop => {
                    self.flights.remove(&ev.id);
                    self.fault_stats.dropped += 1;
                    self.probe.emit(ev.time, EventKind::NetDrop, ev.id, 0);
                    return;
                }
                Verdict::StallUntil(t) => {
                    // The link is down; retry the crossing when the
                    // outage window closes.
                    self.fault_stats.outage_stalls += 1;
                    self.probe.emit(ev.time, EventKind::NetOutage, ev.id, t);
                    self.push_event(t, ev.id, ev.node);
                    return;
                }
                Verdict::Duplicate => {
                    self.fault_stats.duplicated += 1;
                    let dup_id = DUP_BIT | self.next_dup_id;
                    self.next_dup_id += 1;
                    self.probe.emit(ev.time, EventKind::NetDup, ev.id, dup_id);
                    let payload = self
                        .flights
                        .get(&ev.id)
                        .expect("flight exists")
                        .payload
                        .clone();
                    self.flights.insert(
                        dup_id,
                        Flight {
                            dst,
                            size,
                            sent_at: ev.time,
                            hops,
                            payload,
                        },
                    );
                    self.push_event(ev.time, dup_id, ev.node);
                }
                Verdict::Delay(d) => {
                    self.fault_stats.delayed += 1;
                    self.probe.emit(ev.time, EventKind::NetDelay, ev.id, d);
                    extra = d;
                }
            }
        }
        let free = self.channel_free.get(&ch).copied().unwrap_or(0);
        let start = ev.time.max(free);
        self.channel_free.insert(ch, start + size);
        self.stats.busy_flit_cycles += size;
        self.probe
            .emit(ev.time, EventKind::NetHop, ev.id, ev.node as u64);
        self.flights.get_mut(&ev.id).expect("flight exists").hops += 1;
        let arrive = start + self.cfg.hop_latency + extra;
        self.push_event(arrive, ev.id, next);
    }

    /// True if no packets are in flight.
    pub fn is_idle(&self) -> bool {
        self.flights.is_empty()
    }

    /// Number of packets in flight.
    pub fn in_flight(&self) -> usize {
        self.flights.len()
    }

    /// The time of the next internal event, if any (lets a machine skip
    /// quiet cycles).
    pub fn next_event_time(&self) -> Option<u64> {
        let ev = self.events.peek().map(|Reverse(e)| e.time);
        let rd = self.ready.front().map(|&(t, _, _)| t);
        match (ev, rd) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// The earliest cycle at which a packet will be handed to its
    /// destination, routing in-flight packets forward as far as needed
    /// to find out.
    ///
    /// Hop traversal is simulated with one internal event per channel
    /// crossing, so [`Network::next_event_time`] can never see past the
    /// next hop — an event-driven machine stepping by it crawls through
    /// transit cycle by cycle. This accessor instead *processes* those
    /// internal events (in the same deterministic `(time, seq)` order
    /// `poll` would) until the earliest pending delivery time is known,
    /// and returns it without delivering anything.
    ///
    /// # Safety contract (logical, not memory)
    ///
    /// The caller must guarantee that no `send` will be issued before
    /// `min(bound, returned time)` — routing decisions (channel
    /// occupancy, fault verdicts) are made in event order, so traffic
    /// injected earlier than an already-routed hop would be reordered
    /// against it. The ALEWIFE machine guarantees this by passing the
    /// earliest cycle any non-network component can act as `bound`:
    /// while every processor is stalled and every retransmit deadline
    /// is in the future, only a delivery (which this accessor stops at)
    /// can trigger new traffic. Events beyond `bound` are left queued.
    pub fn earliest_delivery(&mut self, bound: u64) -> Option<u64>
    where
        P: Clone,
    {
        loop {
            if let Some(&(t, _, _)) = self.ready.front() {
                // Tails are never earlier than the event that created
                // them, so once the front-of-queue delivery is at or
                // before the next unrouted event nothing can beat it.
                if self.events.peek().is_none_or(|&Reverse(e)| t <= e.time) {
                    return Some(t);
                }
            }
            match self.events.peek() {
                Some(&Reverse(ev)) if ev.time <= bound => {
                    self.events.pop();
                    self.advance(ev);
                }
                _ => return self.ready.front().map(|&(t, _, _)| t),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<P: Copy>(net: &mut Network<P>, until: u64) -> Vec<(u64, usize, P)> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        for t in 0..=until {
            net.poll_into(t, &mut scratch);
            for (dst, p) in scratch.drain(..) {
                out.push((t, dst, p));
            }
        }
        out
    }

    #[test]
    fn unloaded_latency_is_hops_plus_size() {
        let mut net: Network<u32> = Network::new(Topology::new(1, 8), NetConfig::default());
        // 0 -> 7: 7 hops, size 4: header 7 cycles, tail 3 more.
        net.send(0, 0, 7, 4, 42);
        let got = drain(&mut net, 100);
        assert_eq!(got, vec![(10, 7, 42)]);
        assert_eq!(net.stats.avg_hops(), 7.0);
        assert_eq!(net.stats.avg_latency(), 10.0);
    }

    #[test]
    fn loopback_delivery() {
        let mut net: Network<u32> = Network::new(Topology::new(2, 4), NetConfig::default());
        net.send(5, 3, 3, 4, 9);
        let got = drain(&mut net, 20);
        assert_eq!(got, vec![(6, 3, 9)]);
    }

    #[test]
    fn contention_serializes_on_shared_channel() {
        let mut net: Network<u32> = Network::new(Topology::new(1, 4), NetConfig::default());
        // Two packets from 0 to 1 at the same time share channel 0→1.
        net.send(0, 0, 1, 8, 1);
        net.send(0, 0, 1, 8, 2);
        let got = drain(&mut net, 100);
        assert_eq!(got.len(), 2);
        // First: start 0, arrive 1, tail at 8. Second: channel free at
        // 8, arrive 9, tail at 16.
        assert_eq!(got[0].0, 8);
        assert_eq!(got[1].0, 16);
        assert_eq!(got[0].2, 1, "FIFO order preserved");
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let mut net: Network<u32> = Network::new(Topology::new(2, 4), NetConfig::default());
        net.send(0, 0, 1, 4, 1); // x+ channel from 0
        net.send(0, 4, 5, 4, 2); // x+ channel from 4 (different row)
        let got = drain(&mut net, 50);
        assert_eq!(got[0].0, got[1].0, "equal latency on disjoint paths");
    }

    #[test]
    fn many_packets_all_delivered() {
        let mut net: Network<usize> = Network::new(Topology::new(2, 4), NetConfig::default());
        let n = net.topology().num_nodes();
        for i in 0..100 {
            net.send((i % 7) as u64, i % n, (i * 5 + 3) % n, 4, i);
        }
        let got = drain(&mut net, 10_000);
        assert_eq!(got.len(), 100);
        assert!(net.is_idle());
        assert_eq!(net.stats.delivered, 100);
    }

    #[test]
    fn utilization_accounting() {
        let mut net: Network<u32> = Network::new(Topology::new(1, 2), NetConfig::default());
        net.send(0, 0, 1, 10, 1);
        drain(&mut net, 100);
        // One channel of two carried 10 flit-cycles.
        let u = net
            .stats
            .channel_utilization(net.topology().num_channels(), 100);
        assert!((u - 10.0 / 200.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_order() {
        let run = || {
            let mut net: Network<usize> = Network::new(Topology::new(2, 3), NetConfig::default());
            for i in 0..20 {
                net.send(0, i % 9, (i * 2) % 9, 3, i);
            }
            drain(&mut net, 1000)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn earliest_delivery_sees_past_hop_events() {
        let mut net: Network<u32> = Network::new(Topology::new(1, 8), NetConfig::default());
        // 0 -> 7: 7 hops + 3 tail cycles = delivered at 10, but the
        // next *internal* event is the first hop at cycle 0.
        net.send(0, 0, 7, 4, 42);
        assert_eq!(net.next_event_time(), Some(0));
        assert_eq!(net.earliest_delivery(u64::MAX), Some(10));
        // Routing ahead must not change what poll delivers, or when.
        let mut got = Vec::new();
        net.poll_into(9, &mut got);
        assert!(got.is_empty());
        net.poll_into(10, &mut got);
        assert_eq!(got, vec![(7, 42)]);
        assert!(net.is_idle());
    }

    #[test]
    fn earliest_delivery_respects_bound() {
        let mut net: Network<u32> = Network::new(Topology::new(1, 8), NetConfig::default());
        net.send(0, 0, 7, 4, 42);
        // Nothing is deliverable by cycle 3; events past the bound must
        // stay queued so traffic injected at 4 still orders correctly.
        assert_eq!(net.earliest_delivery(3), None);
        assert!(net.next_event_time().expect("hops remain") >= 3);
        let got = drain(&mut net, 100);
        assert_eq!(got, vec![(10, 7, 42)]);
    }

    use crate::fault::{FaultPlan, FaultRule};

    fn faulty(plan: FaultPlan) -> Network<usize> {
        Network::with_faults(Topology::new(2, 4), NetConfig::default(), plan)
    }

    fn spray(net: &mut Network<usize>, n: usize) -> Vec<(u64, usize, usize)> {
        let nodes = net.topology().num_nodes();
        for i in 0..n {
            net.send((i % 11) as u64, i % nodes, (i * 7 + 3) % nodes, 4, i);
        }
        drain(net, 1_000_000)
    }

    #[test]
    fn drops_lose_packets_and_are_counted() {
        let mut net = faulty(FaultPlan::new(0xd0).with_default_rule(FaultRule::drop(0.2)));
        let got = spray(&mut net, 400);
        assert!(
            net.fault_stats.dropped > 0,
            "0.2 drop over 400 packets must drop some"
        );
        assert_eq!(got.len() as u64 + net.fault_stats.dropped, 400);
        assert!(net.is_idle(), "dropped packets must not linger in flight");
    }

    #[test]
    fn duplicates_arrive_twice_and_are_counted() {
        let mut net = faulty(FaultPlan::new(0xdb).with_default_rule(FaultRule::dup(0.2)));
        let got = spray(&mut net, 400);
        assert!(net.fault_stats.duplicated > 0);
        assert_eq!(got.len() as u64, 400 + net.fault_stats.duplicated);
        // Every duplicate is a bit-exact copy of some original.
        for &(_, dst, p) in &got {
            assert_eq!(dst, (p * 7 + 3) % net.topology().num_nodes());
        }
    }

    #[test]
    fn delays_slow_but_do_not_lose() {
        let mut clean = faulty(FaultPlan::new(1));
        let base = spray(&mut clean, 200);
        let mut net = faulty(FaultPlan::new(1).with_default_rule(FaultRule::delay(0.5, 32)));
        let got = spray(&mut net, 200);
        assert_eq!(got.len(), 200);
        assert!(net.fault_stats.delayed > 0);
        let sum = |v: &[(u64, usize, usize)]| v.iter().map(|&(t, ..)| t).sum::<u64>();
        assert!(sum(&got) > sum(&base), "jitter must increase total latency");
    }

    #[test]
    fn outage_stalls_crossing_until_window_ends() {
        let (ch, _) = Topology::new(1, 4).next_hop(0, 1).expect("hop exists");
        let mut net: Network<u32> = Network::with_faults(
            Topology::new(1, 4),
            NetConfig::default(),
            FaultPlan::new(7).with_outage(ch, 0, 50),
        );
        net.send(0, 0, 1, 4, 9);
        let got = drain(&mut net, 1000);
        assert_eq!(got.len(), 1);
        assert!(
            got[0].0 >= 50,
            "delivered at {} despite outage until 50",
            got[0].0
        );
        assert_eq!(net.fault_stats.outage_stalls, 1);
    }

    #[test]
    fn link_kill_swallows_silently_from_onset() {
        let topo = Topology::new(1, 4);
        let (ch, _) = topo.next_hop(0, 1).expect("hop exists");
        let mut net: Network<u32> = Network::with_faults(
            topo,
            NetConfig::default(),
            FaultPlan::new(7).with_link_kill(ch, 5),
        );
        net.send(0, 0, 1, 4, 1); // crosses at cycle 0: survives
        net.send(5, 0, 1, 4, 2); // crosses at cycle 5: swallowed
        let got = drain(&mut net, 1000);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].2, 1);
        assert_eq!(net.fault_stats.failstop_drops, 1);
        assert_eq!(net.fault_stats.dead_letters, 0, "silent, not typed");
        assert!(net.dead_letters().is_empty());
        assert!(net.is_idle(), "swallowed packets must not linger");
    }

    #[test]
    fn node_kill_swallows_traffic_at_through_and_to_the_node() {
        let mut net: Network<u32> = Network::with_faults(
            Topology::new(1, 4),
            NetConfig::default(),
            FaultPlan::new(7).with_node_kill(1, 0),
        );
        net.send(0, 0, 1, 4, 1); // to the dead node
        net.send(0, 0, 2, 4, 2); // through the dead node
        net.send(0, 1, 1, 4, 3); // loopback at the dead node
        net.send(0, 3, 2, 4, 4); // untouched
        let got = drain(&mut net, 1000);
        assert_eq!(got, vec![(4, 2, 4)]);
        assert_eq!(net.fault_stats.failstop_drops, 3);
        assert!(net.is_idle());
    }

    #[test]
    fn quarantine_reroutes_around_a_dead_link() {
        let topo = Topology::new(2, 2);
        let (dead, _) = topo.next_hop(0, 1).expect("hop exists");
        // The link is killed from cycle 0 AND quarantined: the router
        // detours 0 -> 2 -> 3 -> 1 and the packet survives.
        let plan = FaultPlan::new(7)
            .with_link_kill(dead, 0)
            .with_quarantined_channel(dead);
        let mut net: Network<u32> = Network::with_faults(topo, NetConfig::default(), plan);
        net.send(0, 0, 1, 4, 9);
        let got = drain(&mut net, 1000);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, 1);
        assert_eq!(net.fault_stats.failstop_drops, 0);
        assert_eq!(net.stats.total_hops, 3, "minimal detour is 3 hops");
    }

    #[test]
    fn unreachable_destination_is_a_typed_dead_letter() {
        let topo = Topology::new(1, 2);
        let (only, _) = topo.next_hop(0, 1).expect("hop exists");
        let plan = FaultPlan::new(7).with_quarantined_channel(only);
        let mut net: Network<u32> = Network::with_faults(topo, NetConfig::default(), plan);
        net.send(3, 0, 1, 4, 9);
        let got = drain(&mut net, 1000);
        assert!(got.is_empty());
        assert_eq!(net.fault_stats.dead_letters, 1);
        assert_eq!(
            net.dead_letters(),
            &[DeadLetter {
                id: 0,
                dst: 1,
                at: 3,
                payload: 9
            }]
        );
        assert!(net.is_idle(), "dead letters leave the flight table");
    }

    #[test]
    fn quarantined_destination_dead_letters_deliveries() {
        let plan = FaultPlan::new(7).with_quarantined_node(1);
        let mut net: Network<u32> =
            Network::with_faults(Topology::new(1, 4), NetConfig::default(), plan);
        net.send(0, 0, 1, 4, 9);
        net.send(0, 3, 2, 4, 8);
        let got = drain(&mut net, 1000);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].2, 8);
        assert_eq!(net.fault_stats.dead_letters, 1);
        assert_eq!(net.dead_letters().len(), 1);
    }

    #[test]
    fn fault_schedule_is_reproducible() {
        let run = || {
            let plan = FaultPlan::new(0x5eed).with_default_rule(FaultRule {
                drop: 0.1,
                dup: 0.1,
                delay: 0.2,
                max_delay: 16,
            });
            let mut net = faulty(plan);
            let got = spray(&mut net, 300);
            (got, net.fault_stats)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stats_guard_zero_denominators() {
        // An empty or zero-elapsed run must report 0.0, never NaN or a
        // division panic.
        let s = NetStats::default();
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.avg_hops(), 0.0);
        assert_eq!(s.channel_utilization(0, 0), 0.0);
        assert_eq!(s.channel_utilization(16, 0), 0.0);
        assert_eq!(s.channel_utilization(0, 1_000), 0.0);
        let busy = NetStats {
            busy_flit_cycles: 40,
            ..NetStats::default()
        };
        assert_eq!(busy.avg_latency(), 0.0, "no deliveries yet");
        assert!(busy.channel_utilization(4, 10).is_finite());
    }

    #[test]
    fn stats_charged_at_handover_not_at_routing() {
        let mut net: Network<u32> = Network::new(Topology::new(1, 8), NetConfig::default());
        net.send(0, 0, 7, 4, 42);
        // Route the packet all the way forward: no delivery counted.
        assert_eq!(net.earliest_delivery(u64::MAX), Some(10));
        assert_eq!(net.stats.delivered, 0);
        assert_eq!(net.stats.total_latency, 0);
        assert_eq!(net.stats.total_hops, 0);
        // Popping it charges latency and hops exactly once.
        let mut got = Vec::new();
        net.poll_into(10, &mut got);
        assert_eq!(got, vec![(7, 42)]);
        assert_eq!(net.stats.delivered, 1);
        assert_eq!(net.stats.total_latency, 10);
        assert_eq!(net.stats.total_hops, 7);
    }

    #[test]
    fn lookahead_bounds() {
        let net = |hop, loopback| -> Network<u32> {
            Network::new(
                Topology::new(2, 4),
                NetConfig {
                    hop_latency: hop,
                    loopback_latency: loopback,
                },
            )
        };
        // Default timing: the 1-cycle loopback is the binding term.
        assert_eq!(net(1, 1).lookahead(2), 1);
        // Loopback 2: every term allows a 2-cycle window.
        assert_eq!(net(1, 2).lookahead(2), 2);
        // Routing completion caps the window at min_flits even when
        // hops and loopback are slow.
        assert_eq!(net(3, 5).lookahead(2), 2);
        // A zero loopback admits no safe window at all.
        assert_eq!(net(1, 0).lookahead(2), 0);
    }

    #[test]
    fn window_deliveries_matches_per_cycle_poll() {
        let spray_into = |net: &mut Network<usize>| {
            let n = net.topology().num_nodes();
            for i in 0..60 {
                net.send(
                    (i % 5) as u64,
                    i % n,
                    (i * 7 + 3) % n,
                    2 + (i % 3) as u64,
                    i,
                );
            }
        };
        let cfg = NetConfig {
            hop_latency: 1,
            loopback_latency: 2,
        };
        let mut a: Network<usize> = Network::new(Topology::new(2, 4), cfg);
        let mut b: Network<usize> = Network::new(Topology::new(2, 4), cfg);
        spray_into(&mut a);
        spray_into(&mut b);
        let w = a.lookahead(2);
        assert_eq!(w, 2);
        let mut per_cycle = Vec::new();
        let mut scratch = Vec::new();
        for t in 0..200 {
            a.poll_into(t, &mut scratch);
            for (dst, p) in scratch.drain(..) {
                per_cycle.push((t, dst, p));
            }
        }
        let mut windowed = Vec::new();
        let mut t = 0;
        while t < 200 {
            b.window_deliveries(t, t + w, &mut windowed);
            t += w;
        }
        assert_eq!(per_cycle, windowed);
        assert_eq!(a.stats, b.stats);
        assert!(a.is_idle() && b.is_idle());
    }

    #[test]
    fn inert_plan_is_bit_identical_to_no_plan() {
        let mut plain: Network<usize> = Network::new(Topology::new(2, 4), NetConfig::default());
        let a = spray(&mut plain, 200);
        let mut inert = faulty(FaultPlan::new(42));
        let b = spray(&mut inert, 200);
        assert_eq!(a, b);
        assert_eq!(inert.fault_stats.total(), 0);
    }
}
