//! The packet-switched direct network simulator.
//!
//! Packets cut through the network virtual-cut-through style: a header
//! flit advances one hop per cycle when channels are free; each channel
//! along the path is occupied for the packet's full length in flits, so
//! an unloaded packet of size B crossing h hops is delivered after
//! roughly `h + B` cycles, and contention appears as queueing for busy
//! channels — the behavior the network model of Section 8 captures
//! analytically.
//!
//! The simulator is deterministic: events are ordered by (time,
//! sequence number), and ties resolve in send order.

use crate::topology::{Channel, Topology};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Network timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Cycles for a header to traverse one router/channel stage.
    pub hop_latency: u64,
    /// Latency of a node sending to itself (loopback through the
    /// network interface).
    pub loopback_latency: u64,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig { hop_latency: 1, loopback_latency: 1 }
    }
}

/// Aggregate network statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetStats {
    /// Packets delivered.
    pub delivered: u64,
    /// Sum of end-to-end packet latencies (cycles).
    pub total_latency: u64,
    /// Sum of hop counts.
    pub total_hops: u64,
    /// Sum of flit·cycles of channel occupancy (for utilization).
    pub busy_flit_cycles: u64,
}

impl NetStats {
    /// Mean end-to-end latency per delivered packet.
    pub fn avg_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }

    /// Mean hops per delivered packet.
    pub fn avg_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }

    /// Mean channel utilization over `elapsed` cycles and
    /// `num_channels` channels.
    pub fn channel_utilization(&self, num_channels: usize, elapsed: u64) -> f64 {
        if elapsed == 0 || num_channels == 0 {
            0.0
        } else {
            self.busy_flit_cycles as f64 / (num_channels as f64 * elapsed as f64)
        }
    }
}

#[derive(Debug)]
struct Flight<P> {
    dst: usize,
    size: u64,
    sent_at: u64,
    hops: u64,
    payload: P,
}

/// An event: packet `id`'s header arrives at `node` at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: u64,
    seq: u64,
    id: u64,
    node: usize,
}

/// The interconnection network, generic over the payload type.
///
/// # Examples
///
/// ```
/// use april_net::network::{NetConfig, Network};
/// use april_net::topology::Topology;
///
/// let mut net: Network<&str> = Network::new(Topology::new(2, 4), NetConfig::default());
/// net.send(0, 0, 15, 4, "hello");
/// let mut t = 0;
/// loop {
///     let d = net.poll(t);
///     if !d.is_empty() {
///         assert_eq!(d[0], (15, "hello"));
///         break;
///     }
///     t += 1;
/// }
/// // 6 hops + 4 flits: delivered by cycle 10.
/// assert!(t <= 10);
/// ```
#[derive(Debug)]
pub struct Network<P> {
    topo: Topology,
    cfg: NetConfig,
    events: BinaryHeap<Reverse<Event>>,
    flights: HashMap<u64, Flight<P>>,
    channel_free: HashMap<Channel, u64>,
    ready: VecDeque<(u64, usize, u64)>, // (deliver_time, dst, id)
    next_id: u64,
    seq: u64,
    /// Aggregate statistics.
    pub stats: NetStats,
}

impl<P> Network<P> {
    /// Creates an idle network.
    pub fn new(topo: Topology, cfg: NetConfig) -> Network<P> {
        Network {
            topo,
            cfg,
            events: BinaryHeap::new(),
            flights: HashMap::new(),
            channel_free: HashMap::new(),
            ready: VecDeque::new(),
            next_id: 0,
            seq: 0,
            stats: NetStats::default(),
        }
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Injects a packet of `size` flits at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `src`/`dst` are out of range or `size` is zero.
    pub fn send(&mut self, now: u64, src: usize, dst: usize, size: u64, payload: P) {
        assert!(src < self.topo.num_nodes() && dst < self.topo.num_nodes());
        assert!(size > 0, "empty packet");
        let id = self.next_id;
        self.next_id += 1;
        self.flights.insert(id, Flight { dst, size, sent_at: now, hops: 0, payload });
        self.push_event(now, id, src);
    }

    fn push_event(&mut self, time: u64, id: u64, node: usize) {
        self.seq += 1;
        self.events.push(Reverse(Event { time, seq: self.seq, id, node }));
    }

    /// Advances the simulation to `now` and returns packets delivered
    /// by then, in deterministic order.
    pub fn poll(&mut self, now: u64) -> Vec<(usize, P)> {
        while let Some(&Reverse(ev)) = self.events.peek() {
            if ev.time > now {
                break;
            }
            self.events.pop();
            self.advance(ev);
        }
        let mut out = Vec::new();
        while let Some(&(t, _, _)) = self.ready.front() {
            if t > now {
                break;
            }
            let (_, dst, id) = self.ready.pop_front().expect("checked nonempty");
            let flight = self.flights.remove(&id).expect("flight exists");
            out.push((dst, flight.payload));
        }
        out
    }

    fn advance(&mut self, ev: Event) {
        let flight = self.flights.get_mut(&ev.id).expect("flight exists");
        if ev.node == flight.dst {
            // Header arrived; the tail needs size-1 more cycles (or
            // loopback latency for self-sends that never hopped).
            let tail = if flight.hops == 0 {
                ev.time + self.cfg.loopback_latency
            } else {
                ev.time + flight.size.saturating_sub(1)
            };
            self.stats.delivered += 1;
            self.stats.total_latency += tail - flight.sent_at;
            self.stats.total_hops += flight.hops;
            let dst = flight.dst;
            // Insert keeping deliver-time order (events are processed
            // in time order, so tails are nearly sorted; fix up local
            // inversions caused by differing sizes).
            let pos = self.ready.iter().position(|&(t, _, _)| t > tail).unwrap_or(self.ready.len());
            self.ready.insert(pos, (tail, dst, ev.id));
            return;
        }
        let (ch, next) = self.topo.next_hop(ev.node, flight.dst).expect("not at dst");
        let free = self.channel_free.get(&ch).copied().unwrap_or(0);
        let start = ev.time.max(free);
        self.channel_free.insert(ch, start + flight.size);
        self.stats.busy_flit_cycles += flight.size;
        flight.hops += 1;
        let arrive = start + self.cfg.hop_latency;
        self.push_event(arrive, ev.id, next);
    }

    /// True if no packets are in flight.
    pub fn is_idle(&self) -> bool {
        self.flights.is_empty()
    }

    /// Number of packets in flight.
    pub fn in_flight(&self) -> usize {
        self.flights.len()
    }

    /// The time of the next internal event, if any (lets a machine skip
    /// quiet cycles).
    pub fn next_event_time(&self) -> Option<u64> {
        let ev = self.events.peek().map(|Reverse(e)| e.time);
        let rd = self.ready.front().map(|&(t, _, _)| t);
        match (ev, rd) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<P: Copy>(net: &mut Network<P>, until: u64) -> Vec<(u64, usize, P)> {
        let mut out = Vec::new();
        for t in 0..=until {
            for (dst, p) in net.poll(t) {
                out.push((t, dst, p));
            }
        }
        out
    }

    #[test]
    fn unloaded_latency_is_hops_plus_size() {
        let mut net: Network<u32> = Network::new(Topology::new(1, 8), NetConfig::default());
        // 0 -> 7: 7 hops, size 4: header 7 cycles, tail 3 more.
        net.send(0, 0, 7, 4, 42);
        let got = drain(&mut net, 100);
        assert_eq!(got, vec![(10, 7, 42)]);
        assert_eq!(net.stats.avg_hops(), 7.0);
        assert_eq!(net.stats.avg_latency(), 10.0);
    }

    #[test]
    fn loopback_delivery() {
        let mut net: Network<u32> = Network::new(Topology::new(2, 4), NetConfig::default());
        net.send(5, 3, 3, 4, 9);
        let got = drain(&mut net, 20);
        assert_eq!(got, vec![(6, 3, 9)]);
    }

    #[test]
    fn contention_serializes_on_shared_channel() {
        let mut net: Network<u32> = Network::new(Topology::new(1, 4), NetConfig::default());
        // Two packets from 0 to 1 at the same time share channel 0→1.
        net.send(0, 0, 1, 8, 1);
        net.send(0, 0, 1, 8, 2);
        let got = drain(&mut net, 100);
        assert_eq!(got.len(), 2);
        // First: start 0, arrive 1, tail at 8. Second: channel free at
        // 8, arrive 9, tail at 16.
        assert_eq!(got[0].0, 8);
        assert_eq!(got[1].0, 16);
        assert_eq!(got[0].2, 1, "FIFO order preserved");
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let mut net: Network<u32> = Network::new(Topology::new(2, 4), NetConfig::default());
        net.send(0, 0, 1, 4, 1); // x+ channel from 0
        net.send(0, 4, 5, 4, 2); // x+ channel from 4 (different row)
        let got = drain(&mut net, 50);
        assert_eq!(got[0].0, got[1].0, "equal latency on disjoint paths");
    }

    #[test]
    fn many_packets_all_delivered() {
        let mut net: Network<usize> = Network::new(Topology::new(2, 4), NetConfig::default());
        let n = net.topology().num_nodes();
        for i in 0..100 {
            net.send((i % 7) as u64, i % n, (i * 5 + 3) % n, 4, i);
        }
        let got = drain(&mut net, 10_000);
        assert_eq!(got.len(), 100);
        assert!(net.is_idle());
        assert_eq!(net.stats.delivered, 100);
    }

    #[test]
    fn utilization_accounting() {
        let mut net: Network<u32> = Network::new(Topology::new(1, 2), NetConfig::default());
        net.send(0, 0, 1, 10, 1);
        drain(&mut net, 100);
        // One channel of two carried 10 flit-cycles.
        let u = net.stats.channel_utilization(net.topology().num_channels(), 100);
        assert!((u - 10.0 / 200.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_order() {
        let run = || {
            let mut net: Network<usize> = Network::new(Topology::new(2, 3), NetConfig::default());
            for i in 0..20 {
                net.send(0, i % 9, (i * 2) % 9, 3, i);
            }
            drain(&mut net, 1000)
        };
        assert_eq!(run(), run());
    }
}
