//! k-ary n-cube topology and dimension-order routing.
//!
//! "The ALEWIFE system uses a low-dimension direct network. Such
//! networks scale easily and maintain high nearest-neighbor bandwidth"
//! (paper, Section 2.1). The scalability analysis of Section 8 assumes
//! 8000 processors in a three-dimensional array of radix 20, giving an
//! average of nk/3 = 20 hops between a random pair of nodes.

use std::fmt;

/// A k-ary n-cube (n-dimensional array of radix k) with bidirectional
/// channels and no wraparound (a mesh, matching the paper's "array").
///
/// # Examples
///
/// ```
/// use april_net::topology::Topology;
///
/// let t = Topology::new(3, 20);
/// assert_eq!(t.num_nodes(), 8000);
/// assert_eq!(t.distance(0, t.num_nodes() - 1), 3 * 19);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Dimensionality `n`.
    pub dim: usize,
    /// Radix `k` (nodes per dimension).
    pub radix: usize,
}

/// One directed channel: from `node` along `dim` in direction `plus`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Channel {
    /// Source node of the channel.
    pub node: usize,
    /// Dimension index.
    pub dim: usize,
    /// True for the increasing direction.
    pub plus: bool,
}

/// Why [`Topology::try_new`] refused a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// A zero dimension or radix.
    Degenerate,
    /// `radix^dim` does not fit in `usize` — in release builds the
    /// unchecked power would silently wrap, so large meshes must be
    /// rejected at construction, not at first (mis)use.
    Overflow,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Degenerate => write!(f, "degenerate topology (zero dim or radix)"),
            TopologyError::Overflow => write!(f, "radix^dim overflows the node count"),
        }
    }
}

impl std::error::Error for TopologyError {}

impl Topology {
    /// Creates a topology with `dim` dimensions of `radix` nodes each,
    /// rejecting degenerate shapes and node counts that overflow
    /// `usize` (a hazard for paper-scale configs like 3-D radix-20 on
    /// small targets, and for typos like `new(20, 3000)` anywhere).
    pub fn try_new(dim: usize, radix: usize) -> Result<Topology, TopologyError> {
        if dim == 0 || radix == 0 {
            return Err(TopologyError::Degenerate);
        }
        let dim32 = u32::try_from(dim).map_err(|_| TopologyError::Overflow)?;
        radix.checked_pow(dim32).ok_or(TopologyError::Overflow)?;
        Ok(Topology { dim, radix })
    }

    /// Creates a topology with `dim` dimensions of `radix` nodes each.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero or if the node count
    /// `radix^dim` overflows `usize` (see [`Topology::try_new`] for
    /// the non-panicking form).
    pub fn new(dim: usize, radix: usize) -> Topology {
        match Topology::try_new(dim, radix) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Total number of nodes, k^n.
    pub fn num_nodes(&self) -> usize {
        // Constructors reject overflowing shapes, but a Topology can be
        // built by literal struct syntax; keep the check on in release.
        self.radix
            .checked_pow(self.dim as u32)
            .expect("radix^dim overflows the node count")
    }

    /// Total number of directed channels.
    pub fn num_channels(&self) -> usize {
        // Per dimension: (k-1) internal links per row, 2 directions,
        // k^(n-1) rows. Bounded by dim * 2 * num_nodes; the node count
        // is overflow-checked, so check the final product too.
        (self.dim * 2 * (self.radix - 1))
            .checked_mul(self.radix.pow(self.dim as u32 - 1))
            .expect("channel count overflows")
    }

    /// The coordinates of `node`.
    pub fn coords(&self, node: usize) -> Vec<usize> {
        let mut c = Vec::with_capacity(self.dim);
        let mut v = node;
        for _ in 0..self.dim {
            c.push(v % self.radix);
            v /= self.radix;
        }
        c
    }

    /// The node at the given coordinates.
    pub fn node_at(&self, coords: &[usize]) -> usize {
        coords.iter().rev().fold(0, |acc, &c| acc * self.radix + c)
    }

    /// Manhattan distance (number of hops) between two nodes.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        // Peel coordinates digit by digit; the router calls this on
        // hot paths, so no intermediate vectors.
        let (mut a, mut b) = (a, b);
        let mut d = 0;
        for _ in 0..self.dim {
            d += (a % self.radix).abs_diff(b % self.radix);
            a /= self.radix;
            b /= self.radix;
        }
        d
    }

    /// Dimension-order routing: the channel and next node for a packet
    /// at `cur` heading to `dst`, or `None` if already there.
    pub fn next_hop(&self, cur: usize, dst: usize) -> Option<(Channel, usize)> {
        if cur == dst {
            return None;
        }
        // Walk the mixed-radix digits in place — this runs once per
        // channel crossing of every packet, so it must not allocate.
        let (mut c, mut t) = (cur, dst);
        let mut stride = 1;
        for dim in 0..self.dim {
            let (cc, cd) = (c % self.radix, t % self.radix);
            if cc != cd {
                let plus = cd > cc;
                let next = if plus { cur + stride } else { cur - stride };
                return Some((
                    Channel {
                        node: cur,
                        dim,
                        plus,
                    },
                    next,
                ));
            }
            c /= self.radix;
            t /= self.radix;
            stride *= self.radix;
        }
        unreachable!("coords equal but nodes differ");
    }

    /// The neighbor of `cur` along `dim` in direction `plus`, or `None`
    /// at the mesh edge (no wraparound).
    pub fn neighbor(&self, cur: usize, dim: usize, plus: bool) -> Option<usize> {
        let stride = self.radix.pow(dim as u32);
        let coord = (cur / stride) % self.radix;
        if plus {
            (coord + 1 < self.radix).then(|| cur + stride)
        } else {
            (coord > 0).then(|| cur - stride)
        }
    }

    /// Minimal-detour avoidance routing: the first hop of a shortest
    /// path from `cur` to `dst` that uses no channel for which
    /// `avoid(channel, next_node)` is true, or `None` if every path is
    /// blocked (the caller turns that into a typed dead letter).
    ///
    /// The choice is deterministic: a reverse BFS from `dst` labels
    /// every node with its alive-graph distance, and candidates at
    /// `cur` are examined in dimension order with the direction toward
    /// `dst` first — so with nothing avoided this degenerates to
    /// exactly [`Topology::next_hop`], and following the rule hop by
    /// hop strictly descends the distance gradient (no loops).
    ///
    /// # Panics
    ///
    /// Panics if `cur == dst` (route before calling, as
    /// [`Topology::next_hop`]'s `None` contract does).
    pub fn next_hop_avoiding(
        &self,
        cur: usize,
        dst: usize,
        avoid: &dyn Fn(Channel, usize) -> bool,
    ) -> Option<(Channel, usize)> {
        assert!(cur != dst, "already at destination");
        // Reverse BFS from dst over alive channels: dist[u] = alive
        // hops from u to dst.
        let n = self.num_nodes();
        let mut dist = vec![u32::MAX; n];
        dist[dst] = 0;
        let mut queue = std::collections::VecDeque::with_capacity(n);
        queue.push_back(dst);
        while let Some(v) = queue.pop_front() {
            for d in 0..self.dim {
                for plus in [false, true] {
                    // Predecessor u with an alive channel u -> v.
                    let Some(u) = self.neighbor(v, d, plus) else {
                        continue;
                    };
                    if dist[u] != u32::MAX {
                        continue;
                    }
                    let ch = Channel {
                        node: u,
                        dim: d,
                        plus: !plus,
                    };
                    if avoid(ch, v) {
                        continue;
                    }
                    dist[u] = dist[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        if dist[cur] == u32::MAX {
            return None;
        }
        // First neighbor on the gradient, dimension-ordered, toward-dst
        // direction first.
        let (cc, cd) = (self.coords(cur), self.coords(dst));
        for d in 0..self.dim {
            let dirs = if cd[d] >= cc[d] {
                [true, false]
            } else {
                [false, true]
            };
            for plus in dirs {
                let Some(next) = self.neighbor(cur, d, plus) else {
                    continue;
                };
                let ch = Channel {
                    node: cur,
                    dim: d,
                    plus,
                };
                if !avoid(ch, next) && dist[next] != u32::MAX && dist[next] + 1 == dist[cur] {
                    return Some((ch, next));
                }
            }
        }
        unreachable!("finite distance implies a gradient neighbor");
    }

    /// Average hop count between uniformly random node pairs, which the
    /// paper approximates as nk/3.
    pub fn avg_distance_estimate(&self) -> f64 {
        self.dim as f64 * self.radix as f64 / 3.0
    }

    /// Minimum hop count between two *distinct* nodes: the closest pair
    /// of nodes in a mesh is always adjacent. This is the topology term
    /// of the conservative-window lookahead — no cross-node packet can
    /// arrive in fewer channel crossings.
    pub fn min_hop_distance(&self) -> u64 {
        1
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-ary {}-cube ({} nodes)",
            self.radix,
            self.dim,
            self.num_nodes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let t = Topology::new(3, 4);
        for n in 0..t.num_nodes() {
            assert_eq!(t.node_at(&t.coords(n)), n);
        }
    }

    #[test]
    fn paper_configuration() {
        let t = Topology::new(3, 20);
        assert_eq!(t.num_nodes(), 8000);
        assert!((t.avg_distance_estimate() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn dimension_order_route_reaches_destination() {
        let t = Topology::new(2, 4);
        let (src, dst) = (0, 15); // (0,0) -> (3,3)
        let mut cur = src;
        let mut hops = 0;
        while let Some((ch, next)) = t.next_hop(cur, dst) {
            assert_eq!(ch.node, cur);
            cur = next;
            hops += 1;
            assert!(hops <= 6, "route too long");
        }
        assert_eq!(cur, dst);
        assert_eq!(hops, t.distance(src, dst));
    }

    #[test]
    fn routing_is_dimension_ordered() {
        let t = Topology::new(2, 4);
        // From (1,1)=5 to (3,3)=15: x first.
        let (ch, next) = t.next_hop(5, 15).unwrap();
        assert_eq!(ch.dim, 0);
        assert!(ch.plus);
        assert_eq!(next, 6);
    }

    #[test]
    fn distance_is_symmetric_and_triangle() {
        let t = Topology::new(3, 3);
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                assert_eq!(t.distance(a, b), t.distance(b, a));
            }
        }
        assert_eq!(t.distance(0, 0), 0);
    }

    #[test]
    fn avoidance_routing_matches_dimension_order_when_unconstrained() {
        let t = Topology::new(2, 4);
        let none = |_: Channel, _: usize| false;
        for src in 0..t.num_nodes() {
            for dst in 0..t.num_nodes() {
                if src == dst {
                    continue;
                }
                assert_eq!(
                    t.next_hop_avoiding(src, dst, &none),
                    t.next_hop(src, dst),
                    "{src}->{dst}"
                );
            }
        }
    }

    #[test]
    fn avoidance_routing_detours_around_a_dead_link() {
        let t = Topology::new(2, 2);
        // Kill 0 -> 1 (dim 0, plus). Shortest alive path: 0 -> 2 -> 3 -> 1.
        let dead = Channel {
            node: 0,
            dim: 0,
            plus: true,
        };
        let avoid = move |ch: Channel, _: usize| ch == dead;
        let mut cur = 0;
        let mut path = vec![0];
        while cur != 1 {
            let (ch, next) = t.next_hop_avoiding(cur, 1, &avoid).expect("reachable");
            assert_ne!(ch, dead);
            cur = next;
            path.push(next);
            assert!(path.len() <= 4, "detour too long: {path:?}");
        }
        assert_eq!(path, vec![0, 2, 3, 1]);
    }

    #[test]
    fn avoidance_routing_reports_unreachable() {
        let t = Topology::new(1, 2);
        // The mesh's only 0 -> 1 channel is avoided: unreachable.
        let avoid = |ch: Channel, _: usize| ch.node == 0;
        assert_eq!(t.next_hop_avoiding(0, 1, &avoid), None);
        // The reverse direction is untouched.
        let (_, next) = t.next_hop_avoiding(1, 0, &avoid).expect("alive");
        assert_eq!(next, 0);
        // Avoiding the destination node itself is also unreachable.
        let t = Topology::new(2, 3);
        let avoid = |_: Channel, next: usize| next == 4;
        assert_eq!(t.next_hop_avoiding(0, 4, &avoid), None);
    }

    #[test]
    fn channel_count() {
        let t = Topology::new(2, 3);
        // 2 dims * 2 dirs * 2 links/row * 3 rows = 24.
        assert_eq!(t.num_channels(), 24);
    }

    #[test]
    fn try_new_rejects_degenerate_and_overflowing_shapes() {
        assert_eq!(Topology::try_new(0, 4), Err(TopologyError::Degenerate));
        assert_eq!(Topology::try_new(2, 0), Err(TopologyError::Degenerate));
        // 3000^20 overflows any usize; must be an error, not a wrap.
        assert_eq!(Topology::try_new(20, 3000), Err(TopologyError::Overflow));
        // usize::MAX dimensions cannot even convert to the pow exponent.
        assert_eq!(
            Topology::try_new(usize::MAX, 2),
            Err(TopologyError::Overflow)
        );
        // The paper's 8000-node mesh and the 1000+-node bench shapes
        // are fine.
        assert_eq!(Topology::try_new(3, 20).unwrap().num_nodes(), 8000);
        assert_eq!(Topology::try_new(2, 33).unwrap().num_nodes(), 1089);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn new_panics_on_overflow_in_release_too() {
        let _ = Topology::new(20, 3000);
    }
}
