//! Wire encoding of the network simulator's full state.
//!
//! The network is the one component whose state is generic over the
//! payload type, so the entry points here take payload encode/decode
//! closures: the machine layer passes closures that encode its own
//! envelope type. Everything else — the event heap, in-flight packets,
//! channel reservations, the fault plan and its statistics — is encoded
//! in a canonical order (heaps drained to sorted vectors, maps sorted
//! by key) so that two networks in the same logical state always
//! produce identical bytes. See DESIGN.md §11 for the format rules.

use crate::fault::{FaultPlan, FaultRule, FaultStats, Outage};
use crate::network::{DeadLetter, Event, Flight, NetStats, Network};
use crate::topology::Channel;
use april_obs::{Hist, Probe};
use april_util::hash::DetState;
use april_util::wire::{ByteReader, ByteWriter, WireError};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

fn encode_channel(ch: &Channel, w: &mut ByteWriter) {
    w.usize(ch.node);
    w.usize(ch.dim);
    w.bool(ch.plus);
}

fn decode_channel(r: &mut ByteReader) -> Result<Channel, WireError> {
    Ok(Channel {
        node: r.usize()?,
        dim: r.usize()?,
        plus: r.bool()?,
    })
}

fn encode_rule(rule: &FaultRule, w: &mut ByteWriter) {
    w.f64(rule.drop);
    w.f64(rule.dup);
    w.f64(rule.delay);
    w.u64(rule.max_delay);
}

fn decode_rule(r: &mut ByteReader) -> Result<FaultRule, WireError> {
    Ok(FaultRule {
        drop: r.f64()?,
        dup: r.f64()?,
        delay: r.f64()?,
        max_delay: r.u64()?,
    })
}

/// Encode a fault plan (seed, default rule, per-channel rules, outage
/// windows) in canonical key order.
pub fn encode_fault_plan(plan: &FaultPlan, w: &mut ByteWriter) {
    w.u64(plan.seed);
    encode_rule(&plan.default_rule, w);
    let mut chans: Vec<&Channel> = plan.per_channel.keys().collect();
    chans.sort_by_key(|c| (c.node, c.dim, c.plus));
    w.usize(chans.len());
    for ch in chans {
        encode_channel(ch, w);
        encode_rule(&plan.per_channel[ch], w);
    }
    let mut outs: Vec<&Channel> = plan.outages.keys().collect();
    outs.sort_by_key(|c| (c.node, c.dim, c.plus));
    w.usize(outs.len());
    for ch in outs {
        encode_channel(ch, w);
        let windows = &plan.outages[ch];
        w.usize(windows.len());
        for o in windows {
            w.u64(o.start);
            w.u64(o.end);
        }
    }
    let mut kills: Vec<&Channel> = plan.link_kills.keys().collect();
    kills.sort_by_key(|c| (c.node, c.dim, c.plus));
    w.usize(kills.len());
    for ch in kills {
        encode_channel(ch, w);
        w.u64(plan.link_kills[ch]);
    }
    let mut nodes: Vec<&usize> = plan.node_kills.keys().collect();
    nodes.sort();
    w.usize(nodes.len());
    for n in nodes {
        w.usize(*n);
        w.u64(plan.node_kills[n]);
    }
    let mut qc: Vec<&Channel> = plan.quarantined_channels.iter().collect();
    qc.sort_by_key(|c| (c.node, c.dim, c.plus));
    w.usize(qc.len());
    for ch in qc {
        encode_channel(ch, w);
    }
    let mut qn: Vec<&usize> = plan.quarantined_nodes.iter().collect();
    qn.sort();
    w.usize(qn.len());
    for n in qn {
        w.usize(*n);
    }
}

/// Decode a fault plan encoded by [`encode_fault_plan`].
pub fn decode_fault_plan(r: &mut ByteReader) -> Result<FaultPlan, WireError> {
    let seed = r.u64()?;
    let default_rule = decode_rule(r)?;
    let nchan = r.usize()?;
    let mut per_channel = HashMap::new();
    for _ in 0..nchan {
        let ch = decode_channel(r)?;
        per_channel.insert(ch, decode_rule(r)?);
    }
    let nout = r.usize()?;
    let mut outages: HashMap<Channel, Vec<Outage>> = HashMap::new();
    for _ in 0..nout {
        let ch = decode_channel(r)?;
        let nwin = r.usize()?;
        let mut windows = Vec::with_capacity(nwin);
        for _ in 0..nwin {
            let start = r.u64()?;
            let end = r.u64()?;
            if start >= end {
                return Err(WireError::Corrupt("outage window start >= end"));
            }
            windows.push(Outage { start, end });
        }
        outages.insert(ch, windows);
    }
    let nkill = r.usize()?;
    let mut link_kills = HashMap::new();
    for _ in 0..nkill {
        let ch = decode_channel(r)?;
        link_kills.insert(ch, r.u64()?);
    }
    let nnode = r.usize()?;
    let mut node_kills = HashMap::new();
    for _ in 0..nnode {
        let n = r.usize()?;
        node_kills.insert(n, r.u64()?);
    }
    let nqc = r.usize()?;
    let mut quarantined_channels = HashSet::new();
    for _ in 0..nqc {
        quarantined_channels.insert(decode_channel(r)?);
    }
    let nqn = r.usize()?;
    let mut quarantined_nodes = HashSet::new();
    for _ in 0..nqn {
        quarantined_nodes.insert(r.usize()?);
    }
    Ok(FaultPlan {
        seed,
        default_rule,
        per_channel,
        outages,
        link_kills,
        node_kills,
        quarantined_channels,
        quarantined_nodes,
    })
}

fn encode_net_stats(s: &NetStats, w: &mut ByteWriter) {
    w.u64(s.delivered);
    w.u64(s.total_latency);
    w.u64(s.total_hops);
    w.u64(s.busy_flit_cycles);
}

fn decode_net_stats(r: &mut ByteReader) -> Result<NetStats, WireError> {
    Ok(NetStats {
        delivered: r.u64()?,
        total_latency: r.u64()?,
        total_hops: r.u64()?,
        busy_flit_cycles: r.u64()?,
    })
}

fn encode_fault_stats(s: &FaultStats, w: &mut ByteWriter) {
    w.u64(s.dropped);
    w.u64(s.duplicated);
    w.u64(s.delayed);
    w.u64(s.outage_stalls);
    w.u64(s.failstop_drops);
    w.u64(s.dead_letters);
}

fn decode_fault_stats(r: &mut ByteReader) -> Result<FaultStats, WireError> {
    Ok(FaultStats {
        dropped: r.u64()?,
        duplicated: r.u64()?,
        delayed: r.u64()?,
        outage_stalls: r.u64()?,
        failstop_drops: r.u64()?,
        dead_letters: r.u64()?,
    })
}

impl<P> Network<P> {
    /// Encode the network's complete state, using `enc` to encode each
    /// in-flight payload.
    ///
    /// The topology and timing configuration are included so a restore
    /// into a differently-shaped network is rejected rather than
    /// silently corrupting routing state.
    pub fn encode_with(&self, w: &mut ByteWriter, mut enc: impl FnMut(&P, &mut ByteWriter)) {
        w.usize(self.topo.dim);
        w.usize(self.topo.radix);
        w.u64(self.cfg.hop_latency);
        w.u64(self.cfg.loopback_latency);

        let mut events: Vec<Event> = self.events.iter().map(|Reverse(e)| *e).collect();
        events.sort();
        w.usize(events.len());
        for e in &events {
            w.u64(e.time);
            w.u64(e.seq);
            w.u64(e.id);
            w.usize(e.node);
        }

        let mut ids: Vec<&u64> = self.flights.keys().collect();
        ids.sort();
        w.usize(ids.len());
        for id in ids {
            let f = &self.flights[id];
            w.u64(*id);
            w.usize(f.dst);
            w.u64(f.size);
            w.u64(f.sent_at);
            w.u64(f.hops);
            enc(&f.payload, w);
        }

        let mut chans: Vec<&Channel> = self.channel_free.keys().collect();
        chans.sort_by_key(|c| (c.node, c.dim, c.plus));
        w.usize(chans.len());
        for ch in chans {
            encode_channel(ch, w);
            w.u64(self.channel_free[ch]);
        }

        w.usize(self.ready.len());
        for &(time, dst, id) in &self.ready {
            w.u64(time);
            w.usize(dst);
            w.u64(id);
        }

        w.u64(self.next_id);
        w.u64(self.next_dup_id);
        w.u64(self.seq);

        w.bool(self.fault.is_some());
        if let Some(plan) = &self.fault {
            encode_fault_plan(plan, w);
        }

        encode_net_stats(&self.stats, w);
        encode_fault_stats(&self.fault_stats, w);

        w.usize(self.dead_letters.len());
        for dl in &self.dead_letters {
            w.u64(dl.id);
            w.usize(dl.dst);
            w.u64(dl.at);
            enc(&dl.payload, w);
        }

        self.latency_hist.encode(w);
        self.hops_hist.encode(w);
        self.probe.encode(w);
    }

    /// Restore state encoded by [`Network::encode_with`] into `self`,
    /// using `dec` to decode each in-flight payload.
    ///
    /// `self` must have been constructed with the same topology and
    /// timing configuration as the encoded network; a mismatch is
    /// reported as [`WireError::Corrupt`] and leaves `self` unchanged.
    pub fn restore_with(
        &mut self,
        r: &mut ByteReader,
        mut dec: impl FnMut(&mut ByteReader) -> Result<P, WireError>,
    ) -> Result<(), WireError> {
        let dim = r.usize()?;
        let radix = r.usize()?;
        if dim != self.topo.dim || radix != self.topo.radix {
            return Err(WireError::Corrupt("network topology mismatch"));
        }
        let hop = r.u64()?;
        let loopback = r.u64()?;
        if hop != self.cfg.hop_latency || loopback != self.cfg.loopback_latency {
            return Err(WireError::Corrupt("network timing config mismatch"));
        }

        let nevents = r.usize()?;
        let mut events = BinaryHeap::with_capacity(nevents);
        for _ in 0..nevents {
            events.push(Reverse(Event {
                time: r.u64()?,
                seq: r.u64()?,
                id: r.u64()?,
                node: r.usize()?,
            }));
        }

        let nflights = r.usize()?;
        let mut flights = HashMap::with_capacity_and_hasher(nflights, DetState);
        for _ in 0..nflights {
            let id = r.u64()?;
            let dst = r.usize()?;
            let size = r.u64()?;
            let sent_at = r.u64()?;
            let hops = r.u64()?;
            let payload = dec(r)?;
            if dst >= self.topo.num_nodes() {
                return Err(WireError::Corrupt("flight destination out of range"));
            }
            flights.insert(
                id,
                Flight {
                    dst,
                    size,
                    sent_at,
                    hops,
                    payload,
                },
            );
        }

        let nchan = r.usize()?;
        let mut channel_free = HashMap::with_capacity_and_hasher(nchan, DetState);
        for _ in 0..nchan {
            let ch = decode_channel(r)?;
            channel_free.insert(ch, r.u64()?);
        }

        let nready = r.usize()?;
        let mut ready = VecDeque::with_capacity(nready);
        for _ in 0..nready {
            ready.push_back((r.u64()?, r.usize()?, r.u64()?));
        }

        let next_id = r.u64()?;
        let next_dup_id = r.u64()?;
        let seq = r.u64()?;

        let fault = if r.bool()? {
            Some(decode_fault_plan(r)?)
        } else {
            None
        };

        let stats = decode_net_stats(r)?;
        let fault_stats = decode_fault_stats(r)?;

        let ndead = r.usize()?;
        let mut dead_letters = Vec::with_capacity(ndead);
        for _ in 0..ndead {
            let id = r.u64()?;
            let dst = r.usize()?;
            let at = r.u64()?;
            let payload = dec(r)?;
            if dst >= self.topo.num_nodes() {
                return Err(WireError::Corrupt("dead letter destination out of range"));
            }
            dead_letters.push(DeadLetter {
                id,
                dst,
                at,
                payload,
            });
        }

        let latency_hist = Hist::decode(r)?;
        let hops_hist = Hist::decode(r)?;
        let probe = Probe::decode(r)?;

        self.events = events;
        self.flights = flights;
        self.channel_free = channel_free;
        self.ready = ready;
        self.next_id = next_id;
        self.next_dup_id = next_dup_id;
        self.seq = seq;
        self.fault = fault;
        self.stats = stats;
        self.fault_stats = fault_stats;
        self.dead_letters = dead_letters;
        self.latency_hist = latency_hist;
        self.hops_hist = hops_hist;
        self.probe = probe;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetConfig;
    use crate::topology::Topology;

    fn enc_u64(p: &u64, w: &mut ByteWriter) {
        w.u64(*p);
    }

    fn dec_u64(r: &mut ByteReader) -> Result<u64, WireError> {
        r.u64()
    }

    fn loaded_net(seed: u64) -> Network<u64> {
        let plan = FaultPlan::new(seed)
            .with_default_rule(FaultRule {
                drop: 0.05,
                dup: 0.05,
                delay: 0.1,
                max_delay: 7,
            })
            .with_outage(
                Channel {
                    node: 1,
                    dim: 0,
                    plus: true,
                },
                40,
                60,
            );
        let mut net = Network::with_faults(Topology::new(2, 4), NetConfig::default(), plan);
        let mut out = Vec::new();
        let mut payload = 0u64;
        for t in 0..50u64 {
            if t % 3 == 0 {
                let src = (t as usize) % 16;
                let dst = (t as usize * 7 + 3) % 16;
                net.send(t, src, dst, 4, payload);
                payload += 1;
            }
            net.poll_into(t, &mut out);
        }
        net
    }

    fn snapshot(net: &Network<u64>) -> Vec<u8> {
        let mut w = ByteWriter::new();
        net.encode_with(&mut w, enc_u64);
        w.finish()
    }

    #[test]
    fn fault_plan_roundtrips() {
        let plan = FaultPlan::new(99)
            .with_default_rule(FaultRule {
                drop: 0.25,
                dup: 0.0,
                delay: 0.5,
                max_delay: 12,
            })
            .with_channel_rule(
                Channel {
                    node: 3,
                    dim: 1,
                    plus: false,
                },
                FaultRule {
                    drop: 1.0,
                    dup: 0.0,
                    delay: 0.0,
                    max_delay: 0,
                },
            )
            .with_outage(
                Channel {
                    node: 0,
                    dim: 0,
                    plus: true,
                },
                10,
                20,
            )
            .with_link_kill(
                Channel {
                    node: 2,
                    dim: 0,
                    plus: false,
                },
                5_000,
            )
            .with_node_kill(7, 12_000)
            .with_quarantined_channel(Channel {
                node: 1,
                dim: 1,
                plus: true,
            })
            .with_quarantined_node(4);
        let mut w = ByteWriter::new();
        encode_fault_plan(&plan, &mut w);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        let back = decode_fault_plan(&mut r).unwrap();
        assert!(r.is_empty());
        let mut w2 = ByteWriter::new();
        encode_fault_plan(&back, &mut w2);
        assert_eq!(bytes, w2.finish());
    }

    #[test]
    fn restored_network_continues_identically() {
        // Run two networks in lockstep to cycle 50, snapshot one,
        // restore into a fresh network, then drive both (original and
        // restored) identically: deliveries, ids, and stats must match
        // cycle for cycle.
        let mut original = loaded_net(0xA11CE);
        let bytes = snapshot(&original);

        let plan = original.fault_plan().cloned().unwrap();
        let mut restored = Network::with_faults(Topology::new(2, 4), NetConfig::default(), plan);
        let mut r = ByteReader::new(&bytes);
        restored.restore_with(&mut r, dec_u64).unwrap();
        assert!(r.is_empty());
        assert_eq!(bytes, snapshot(&restored), "re-encoding is byte-stable");

        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for t in 50..200u64 {
            if t % 5 == 0 {
                let src = (t as usize) % 16;
                let dst = (t as usize * 11 + 1) % 16;
                original.send(t, src, dst, 6, t);
                restored.send(t, src, dst, 6, t);
            }
            original.poll_into(t, &mut out_a);
            restored.poll_into(t, &mut out_b);
            assert_eq!(out_a, out_b, "divergence at cycle {t}");
        }
        assert_eq!(original.stats, restored.stats);
        assert_eq!(original.fault_stats, restored.fault_stats);
        assert_eq!(snapshot(&original), snapshot(&restored));
    }

    #[test]
    fn dead_letters_roundtrip_with_payloads() {
        let topo = Topology::new(1, 2);
        let (only, _) = topo.next_hop(0, 1).expect("hop exists");
        let plan = FaultPlan::new(9).with_quarantined_channel(only);
        let mut net: Network<u64> = Network::with_faults(topo, NetConfig::default(), plan);
        let mut out = Vec::new();
        net.send(0, 0, 1, 4, 0xdead);
        net.poll_into(10, &mut out);
        assert_eq!(net.dead_letters().len(), 1);

        let bytes = snapshot(&net);
        let mut restored: Network<u64> = Network::with_faults(
            topo,
            NetConfig::default(),
            net.fault_plan().cloned().unwrap(),
        );
        let mut r = ByteReader::new(&bytes);
        restored.restore_with(&mut r, dec_u64).unwrap();
        assert!(r.is_empty());
        assert_eq!(restored.dead_letters(), net.dead_letters());
        assert_eq!(restored.fault_stats, net.fault_stats);
        assert_eq!(bytes, snapshot(&restored));
    }

    #[test]
    fn topology_mismatch_is_rejected() {
        let net = loaded_net(7);
        let bytes = snapshot(&net);
        let mut other: Network<u64> = Network::new(Topology::new(2, 8), NetConfig::default());
        let mut r = ByteReader::new(&bytes);
        assert!(other.restore_with(&mut r, dec_u64).is_err());
    }

    #[test]
    fn truncated_bytes_are_rejected() {
        let net = loaded_net(7);
        let bytes = snapshot(&net);
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            let mut r = ByteReader::new(&bytes[..cut]);
            let mut victim: Network<u64> =
                Network::with_faults(Topology::new(2, 4), NetConfig::default(), FaultPlan::new(7));
            assert!(victim.restore_with(&mut r, dec_u64).is_err());
        }
    }
}
