//! Run-time system configuration: handler policies and cycle costs.
//!
//! The paper gives exact costs for the critical software paths: the
//! context-switch trap handler body is 6 cycles on top of the 5-cycle
//! trap entry (Section 6.1, 11 cycles total; 4 in a custom APRIL), and
//! the future-touch handler takes 23 cycles when the future is
//! resolved (Section 6.2). Other costs are derived from the work the
//! routines do (loads/stores of thread state, queue manipulation) and
//! are configurable for ablation studies.

/// Response to a full/empty synchronization trap (paper, Section 3:
/// spinning / switch spinning / blocking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FePolicy {
    /// Immediately retry the trapping instruction.
    Spin,
    /// Context switch to the next loaded thread without unloading the
    /// trapped one (the paper's default implementation).
    #[default]
    SwitchSpin,
    /// Switch-spin up to the given number of consecutive faults on the
    /// same word, then unload the thread until the word changes state
    /// — the mechanism Section 3.1 proposes against starvation ("a
    /// special controller initiated trap on certain failed
    /// synchronization tests, whose handler unloads the thread").
    BlockAfterSpins(u32),
}

/// Response to touching an unresolved future.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TouchPolicy {
    /// Unload the thread and queue it on the future (frees the frame;
    /// avoids the starvation problem of Section 3.1).
    #[default]
    Block,
    /// Context switch without unloading (can starve if all frames
    /// spin on futures owned by unloaded threads).
    SwitchSpin,
}

/// Cycle costs and policies of the run-time software system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtConfig {
    /// Context-switch handler body (6 on SPARC-APRIL: rdpsr, save,
    /// save, wrpsr, jmpl, rett; the 5-cycle trap entry is charged by
    /// the processor). Use 2 to model the 4-cycle custom APRIL
    /// (2-cycle entry + 2-cycle switch).
    pub switch_handler_cycles: u64,
    /// Future-touch handler when the future is resolved (Section 6.2:
    /// 23 cycles: decode the trapping instruction, test the value
    /// slot's full/empty bit, substitute the value).
    pub touch_resolved_cycles: u64,
    /// Eager task creation: allocate the future and thread record,
    /// initialize the register image, enqueue (Section 7's "normal
    /// task creation").
    pub thread_create_cycles: u64,
    /// Extra cost of *software* task creation on the Encore baseline
    /// (lock-based queues, no tag hardware).
    pub sw_create_extra_cycles: u64,
    /// Software touch check service on the Encore baseline.
    pub sw_touch_cycles: u64,
    /// Lazy future creation: allocate the future, push the task
    /// descriptor on the lazy queue.
    pub lazy_create_cycles: u64,
    /// Handler work to redirect a thread into an inline thunk
    /// evaluation (beyond trap entry).
    pub lazy_inline_cycles: u64,
    /// Loading a previously unloaded thread into a task frame
    /// (32 registers + PC chain + PSR from memory).
    pub thread_load_cycles: u64,
    /// Unloading a thread from a task frame to memory.
    pub thread_unload_cycles: u64,
    /// Loading a *fresh* task (arguments only, no saved state).
    pub fresh_load_cycles: u64,
    /// Determine: store the value, set the full/empty bit, schedule
    /// waiters.
    pub determine_cycles: u64,
    /// Task exit bookkeeping.
    pub exit_cycles: u64,
    /// Dequeue from the local ready queue.
    pub dequeue_cycles: u64,
    /// Stealing work from another node (remote queue access).
    pub steal_cycles: u64,
    /// Full/empty trap policy.
    pub fe_policy: FePolicy,
    /// Future-touch policy for unresolved, non-inlinable futures.
    pub touch_policy: TouchPolicy,
    /// Per-node region size in bytes (must match the machine).
    pub region_bytes: u32,
    /// Stack size per thread in bytes.
    pub stack_bytes: u32,
    /// Simulation fuse: abort after this many cycles.
    pub max_cycles: u64,
}

impl Default for RtConfig {
    fn default() -> RtConfig {
        RtConfig {
            switch_handler_cycles: 6,
            touch_resolved_cycles: 23,
            thread_create_cycles: 90,
            sw_create_extra_cycles: 330,
            sw_touch_cycles: 12,
            lazy_create_cycles: 8,
            lazy_inline_cycles: 4,
            thread_load_cycles: 40,
            thread_unload_cycles: 40,
            fresh_load_cycles: 12,
            determine_cycles: 10,
            exit_cycles: 10,
            dequeue_cycles: 10,
            steal_cycles: 40,
            fe_policy: FePolicy::default(),
            touch_policy: TouchPolicy::default(),
            region_bytes: 1 << 20,
            stack_bytes: 4 * 1024,
            max_cycles: 2_000_000_000,
        }
    }
}

impl RtConfig {
    /// The custom-APRIL timing variant: a 4-cycle context switch
    /// (Section 6.1's "allowing a four-cycle context switch"); pair
    /// with a `CpuConfig` whose `trap_entry_cycles` is 2.
    pub fn custom_april(mut self) -> RtConfig {
        self.switch_handler_cycles = 2;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparc_context_switch_is_eleven_cycles() {
        let c = RtConfig::default();
        // 5-cycle trap entry (processor) + 6-cycle handler = 11.
        assert_eq!(
            april_core::trap::TRAP_ENTRY_CYCLES + c.switch_handler_cycles,
            11
        );
    }

    #[test]
    fn touch_handler_matches_section_6_2() {
        assert_eq!(RtConfig::default().touch_resolved_cycles, 23);
    }

    #[test]
    fn custom_april_is_four_cycles_with_fast_trap() {
        let c = RtConfig::default().custom_april();
        assert_eq!(2 + c.switch_handler_cycles, 4);
    }
}
