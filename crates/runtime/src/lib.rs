//! # april-runtime — the APRIL run-time software system
//!
//! APRIL migrates thread scheduling, trap handling and future support
//! out of hardware into a run-time system (paper, Sections 3 and 6).
//! This crate is that system:
//!
//! * [`abi`] — the register conventions, run-time service numbers and
//!   entry stubs shared with the Mul-T compiler.
//! * [`thread`] — virtual threads: unlimited, dynamically created,
//!   cached in the four hardware task frames.
//! * [`sched`] — per-node ready queues, lazy-task queues, and work
//!   stealing.
//! * [`futures`] — future records (resolution state lives in the
//!   full/empty bit of the value slot) and wait queues.
//! * [`layout`] — per-node heaps and recycled thread stacks.
//! * [`config`] — handler policies (spin / switch-spin / block) and
//!   the paper's cycle costs (11-cycle context switch, 23-cycle
//!   resolved touch).
//! * [`runtime`] — the trap handlers and scheduler driving a
//!   [`april_machine::Machine`].
//! * [`snapshot`] — checkpoint/restore of the whole run-time
//!   (embedding a machine snapshot), for bit-exact resumption.

#![warn(missing_docs)]

pub mod abi;
pub mod config;
pub mod futures;
pub mod layout;
pub mod runtime;
pub mod sched;
pub mod snapshot;
pub mod thread;

pub use config::{FePolicy, RtConfig, TouchPolicy};
pub use runtime::{RunError, RunResult, Runtime};
pub use snapshot::RuntimeSnapshot;
pub use thread::{Thread, ThreadId, ThreadState};
