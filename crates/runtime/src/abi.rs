//! The software ABI shared by the run-time system and the Mul-T
//! compiler.
//!
//! "By taking a systems-level design approach that considers not only
//! the processor, but also the compiler and run-time system, we were
//! able to migrate several non-critical operations into the software
//! system" (paper, Section 1). This module is that contract: register
//! conventions, run-time service numbers, the data-representation
//! singletons, and the entry-stub labels the compiler must emit.

use april_core::isa::Reg;
use april_core::word::Word;

// ---------------------------------------------------------------------
// Register conventions
// ---------------------------------------------------------------------

/// Closure (environment) pointer of the executing procedure.
pub const REG_CLOSURE: Reg = Reg::L(0);
/// First argument / return value.
pub const REG_RET: Reg = Reg::L(1);
/// Argument registers `r1`–`r6`.
pub const ARG_REGS: [Reg; 6] = [
    Reg::L(1),
    Reg::L(2),
    Reg::L(3),
    Reg::L(4),
    Reg::L(5),
    Reg::L(6),
];
/// The task's own future pointer inside the task/inline entry stubs.
pub const REG_FUT: Reg = Reg::L(25);
/// Software (Encore-style) touch operand register.
pub const REG_SW_TOUCH: Reg = Reg::L(24);
/// Stack pointer (stacks grow upward).
pub const REG_SP: Reg = Reg::L(29);
/// Compiler scratch register.
pub const REG_TMP: Reg = Reg::L(30);
/// Link register (return address).
pub const REG_LINK: Reg = Reg::L(31);
/// Heap allocation pointer (per-processor bump allocator).
pub const REG_HEAP: Reg = Reg::G(5);
/// Heap allocation limit.
pub const REG_HEAP_LIM: Reg = Reg::G(6);
/// Assembler/linker scratch (clobbered by the `call` pseudo-op).
pub const REG_ASM_TMP: Reg = Reg::G(7);

// ---------------------------------------------------------------------
// Run-time services (RTCALL numbers)
// ---------------------------------------------------------------------

/// Current task finished (task bodies end here after determining).
pub const RT_EXIT: u16 = 0;
/// Root thread finished; `r1` holds the program result.
pub const RT_MAIN_DONE: u16 = 1;
/// Eager future: `r1` = closure → `r1` = future pointer. Creates a
/// task (Section 3.2, "normal task creation").
pub const RT_FUTURE: u16 = 2;
/// `future-on`: like [`RT_FUTURE`] with `r2` = target node (fixnum).
pub const RT_FUTURE_ON: u16 = 3;
/// Lazy future: `r1` = closure → `r1` = future pointer. Pushes a
/// stealable task descriptor instead of creating a thread
/// (Section 3.2, "lazy task creation").
pub const RT_LAZY_FUTURE: u16 = 4;
/// Determine: `r25` = future, `r1` = value. Resolves the future and
/// wakes waiters.
pub const RT_DETERMINE: u16 = 5;
/// Return from an inline (lazy) thunk evaluation; `r1` = value.
pub const RT_RESUME: u16 = 6;
/// Software task creation for the Encore baseline (no tag hardware).
pub const RT_FUTURE_SW: u16 = 7;
/// Software touch for the Encore baseline: `r24` = maybe-future →
/// `r24` = value (may block).
pub const RT_TOUCH_SW: u16 = 8;
/// Heap chunk refill: resets `g5`/`g6` to a fresh chunk.
pub const RT_HEAP_MORE: u16 = 9;
/// Debug print of `r1` (collected by the harness).
pub const RT_PRINT: u16 = 10;
/// Voluntary yield (used by synthetic workloads).
pub const RT_YIELD: u16 = 11;
/// Retire an open-loop request (DESIGN.md §15): `r1` holds the request
/// word taken from an ingress ring; the machine timestamps it against
/// its arrival plan and records birth→retire latency. A no-op on
/// machines without traffic support.
pub const RT_RETIRE: u16 = 12;

// ---------------------------------------------------------------------
// Data representation singletons
// ---------------------------------------------------------------------

/// Byte address of the `'()` (nil) singleton in node 0's reserved page.
pub const NIL_ADDR: u32 = 8;
/// Byte address of the `#t` singleton.
pub const TRUE_ADDR: u32 = 16;
/// Byte address of the `#f` singleton.
pub const FALSE_ADDR: u32 = 24;

/// The nil word (`other`-tagged pointer to the nil singleton).
pub fn nil() -> Word {
    Word::other_ptr(NIL_ADDR)
}

/// The true word.
pub fn truth() -> Word {
    Word::other_ptr(TRUE_ADDR)
}

/// The false word.
pub fn falsity() -> Word {
    Word::other_ptr(FALSE_ADDR)
}

/// Scheme truthiness: everything except `#f` is true.
pub fn is_truthy(w: Word) -> bool {
    w != falsity()
}

// ---------------------------------------------------------------------
// Entry-stub labels the compiler must emit
// ---------------------------------------------------------------------

/// Entry stub for a spawned task: expects `r0` = closure and `r25` =
/// future; calls the closure, determines the future with the result,
/// and exits.
pub const TASK_ENTRY_LABEL: &str = "__task_entry";
/// Entry stub for inline (lazy) thunk evaluation inside a touching
/// thread: like [`TASK_ENTRY_LABEL`] but ends with [`RT_RESUME`].
pub const INLINE_ENTRY_LABEL: &str = "__inline_entry";
/// Entry stub for the root thread: calls `main`'s closure and raises
/// [`RT_MAIN_DONE`].
pub const MAIN_ENTRY_LABEL: &str = "__main_entry";

/// The assembly text of the three entry stubs, in the form both the
/// compiler and hand-written test programs include.
///
/// Closure layout: word 0 of an `other`-tagged closure record is the
/// raw code address; the call sequence loads it and `jmpl`s.
pub fn entry_stubs_asm() -> String {
    format!(
        "
{TASK_ENTRY_LABEL}:
    ld r0-2, g7        ; code address from closure
    jmpl g7+0, r31
    nop
    rtcall {RT_DETERMINE}
    rtcall {RT_EXIT}
{INLINE_ENTRY_LABEL}:
    ld r0-2, g7
    jmpl g7+0, r31
    nop
    rtcall {RT_DETERMINE}
    rtcall {RT_RESUME}
{MAIN_ENTRY_LABEL}:
    ld r0-2, g7
    jmpl g7+0, r31
    nop
    rtcall {RT_MAIN_DONE}
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_distinct_other_pointers() {
        assert!(nil().is_other());
        assert!(truth().is_other());
        assert!(falsity().is_other());
        assert_ne!(nil(), truth());
        assert_ne!(truth(), falsity());
        assert_ne!(nil(), falsity());
    }

    #[test]
    fn truthiness() {
        assert!(is_truthy(truth()));
        assert!(is_truthy(nil()), "nil is truthy in Scheme");
        assert!(is_truthy(Word::fixnum(0)), "0 is truthy in Scheme");
        assert!(!is_truthy(falsity()));
    }

    #[test]
    fn stubs_assemble() {
        let src = entry_stubs_asm();
        let prog = april_core::isa::asm::assemble(&src).expect("stubs must assemble");
        assert!(prog.label(TASK_ENTRY_LABEL).is_some());
        assert!(prog.label(INLINE_ENTRY_LABEL).is_some());
        assert!(prog.label(MAIN_ENTRY_LABEL).is_some());
    }

    #[test]
    fn service_numbers_are_distinct() {
        let all = [
            RT_EXIT,
            RT_MAIN_DONE,
            RT_FUTURE,
            RT_FUTURE_ON,
            RT_LAZY_FUTURE,
            RT_DETERMINE,
            RT_RESUME,
            RT_FUTURE_SW,
            RT_TOUCH_SW,
            RT_HEAP_MORE,
            RT_PRINT,
            RT_YIELD,
            RT_RETIRE,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
