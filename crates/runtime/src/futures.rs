//! Future bookkeeping.
//!
//! A future is a two-word heap record whose first word is the value
//! slot; its full/empty bit *is* the resolution state (empty =
//! unresolved), so the hardware full/empty machinery provides the
//! fine-grain locking the paper's lazy task creation relies on
//! (Section 3.2). The wait queue and the stealable-thunk descriptor
//! are run-time metadata kept here.

use crate::thread::ThreadId;
use april_core::word::Word;
use std::collections::HashMap;

/// Byte size of a future record (value slot + metadata word).
pub const FUTURE_BYTES: u32 = 8;

/// A stealable lazy task descriptor: evaluate `closure`, determine the
/// future with the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LazyThunk {
    /// The thunk closure (an `other`-tagged pointer).
    pub closure: Word,
    /// The node whose lazy queue holds the descriptor.
    pub owner: usize,
}

/// Run-time metadata for one future.
#[derive(Debug, Clone, Default)]
pub struct FutureInfo {
    /// Threads blocked waiting for resolution.
    pub waiters: Vec<ThreadId>,
    /// Unstolen lazy thunk, if this is a lazy future still in a queue.
    pub lazy: Option<LazyThunk>,
}

/// All live futures' metadata, keyed by the future record's address.
#[derive(Debug, Clone, Default)]
pub struct FutureTable {
    pub(crate) map: HashMap<u32, FutureInfo>,
}

impl FutureTable {
    /// Creates an empty table.
    pub fn new() -> FutureTable {
        FutureTable::default()
    }

    /// Registers a freshly allocated future.
    pub fn create(&mut self, addr: u32) {
        let prev = self.map.insert(addr, FutureInfo::default());
        debug_assert!(
            prev.is_none(),
            "future address reused while live: {addr:#x}"
        );
    }

    /// Attaches a lazy thunk descriptor.
    pub fn set_lazy(&mut self, addr: u32, thunk: LazyThunk) {
        self.map.entry(addr).or_default().lazy = Some(thunk);
    }

    /// Claims the lazy thunk (by the owner inlining it or a thief
    /// stealing it); subsequent claims get `None` — this is the race
    /// the full/empty bit resolves in the real system.
    pub fn take_lazy(&mut self, addr: u32) -> Option<LazyThunk> {
        self.map.get_mut(&addr).and_then(|i| i.lazy.take())
    }

    /// True if the future still has an unstolen thunk.
    pub fn has_lazy(&self, addr: u32) -> bool {
        self.map.get(&addr).is_some_and(|i| i.lazy.is_some())
    }

    /// Queues `t` on the future's wait list.
    pub fn add_waiter(&mut self, addr: u32, t: ThreadId) {
        self.map.entry(addr).or_default().waiters.push(t);
    }

    /// Resolves the future's metadata, returning the waiters to wake
    /// and removing the entry.
    pub fn resolve(&mut self, addr: u32) -> Vec<ThreadId> {
        self.map
            .remove(&addr)
            .map(|i| i.waiters)
            .unwrap_or_default()
    }

    /// Number of live (unresolved) futures.
    pub fn live(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_thunk_claimed_exactly_once() {
        let mut t = FutureTable::new();
        t.create(0x100);
        t.set_lazy(
            0x100,
            LazyThunk {
                closure: Word::other_ptr(0x200),
                owner: 1,
            },
        );
        assert!(t.has_lazy(0x100));
        assert!(t.take_lazy(0x100).is_some());
        assert!(t.take_lazy(0x100).is_none(), "second claim loses the race");
    }

    #[test]
    fn resolve_returns_and_clears_waiters() {
        let mut t = FutureTable::new();
        t.create(0x80);
        t.add_waiter(0x80, ThreadId(1));
        t.add_waiter(0x80, ThreadId(2));
        assert_eq!(t.resolve(0x80), vec![ThreadId(1), ThreadId(2)]);
        assert_eq!(t.resolve(0x80), Vec::<ThreadId>::new());
        assert_eq!(t.live(), 0);
    }
}
