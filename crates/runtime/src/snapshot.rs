//! Checkpointing the run-time system.
//!
//! A machine [`Snapshot`] captures the
//! hardware; the run-time holds just as much behavior-determining
//! state in software — virtual threads and their saved register
//! images, ready and lazy queues, future wait lists, per-node
//! allocators, and the scheduler's round-robin cursor. A
//! [`RuntimeSnapshot`] wraps the machine snapshot together with all of
//! it, so [`Runtime::restore`] resumes a run bit-exactly: the
//! continued run's trace, statistics, and result are identical to an
//! unbroken one.
//!
//! The encoding follows the machine format's conventions (see
//! DESIGN.md §11): little-endian fixed-width integers, length-prefixed
//! byte strings, maps sorted by key so equal logical state always
//! produces identical bytes. The wrapper is versioned independently of
//! the machine snapshot it embeds.

use crate::futures::{FutureInfo, FutureTable, LazyThunk};
use crate::layout::NodeLayout;
use crate::runtime::Runtime;
use crate::sched::{NodeQueues, Scheduler};
use crate::thread::{SavedFrame, Thread, ThreadId, ThreadState};
use april_core::frame::{FREGS_PER_FRAME, REGS_PER_FRAME};
use april_core::psr::Psr;
use april_core::word::Word;
use april_machine::{Machine, Snapshot, SnapshotError};
use april_mem::snapshot::{decode_alloc, encode_alloc};
use april_obs::Probe;
use april_util::wire::{ByteReader, ByteWriter, WireError};

/// Magic prefix of a runtime snapshot (the machine format uses
/// `APRL`).
pub const MAGIC: &[u8] = b"APRT";

/// Current runtime-wrapper format version.
pub const VERSION: u8 = 1;

/// A serialized run-time checkpoint: one machine snapshot plus the
/// run-time software state wrapped around it.
///
/// Produced by [`Runtime::checkpoint`], consumed by
/// [`Runtime::restore`]. The byte string is self-contained and
/// write-to-disk stable ([`RuntimeSnapshot::as_bytes`] /
/// [`RuntimeSnapshot::from_bytes`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeSnapshot {
    bytes: Vec<u8>,
}

impl RuntimeSnapshot {
    /// The serialized form.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Reconstructs a snapshot from bytes, validating the wrapper
    /// header and the embedded machine snapshot's framing. The
    /// run-time payload is validated when it is actually decoded, at
    /// [`Runtime::restore`] time.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BadMagic`], [`SnapshotError::Version`], or
    /// [`SnapshotError::Corrupt`] when the bytes are not a runtime
    /// snapshot.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<RuntimeSnapshot, SnapshotError> {
        let snap = RuntimeSnapshot { bytes };
        snap.machine_snapshot()?;
        Ok(snap)
    }

    /// The machine clock at which the checkpoint was taken.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot bytes are corrupt (impossible for a
    /// value that came through [`RuntimeSnapshot::from_bytes`] or
    /// [`Runtime::checkpoint`]).
    pub fn cycle(&self) -> u64 {
        self.machine_snapshot().expect("validated snapshot").cycle()
    }

    /// Extracts the embedded machine [`Snapshot`].
    ///
    /// # Errors
    ///
    /// As [`RuntimeSnapshot::from_bytes`].
    pub fn machine_snapshot(&self) -> Result<Snapshot, SnapshotError> {
        let mut r = ByteReader::new(&self.bytes);
        let magic = r.bytes()?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(SnapshotError::Version(version));
        }
        let _cfg = r.str()?;
        Snapshot::from_bytes(r.bytes()?.to_vec())
    }
}

// ---------------------------------------------------------------------
// Field encoders
// ---------------------------------------------------------------------

fn encode_saved_frame(f: &SavedFrame, w: &mut ByteWriter) {
    for r in &f.regs {
        w.u32(r.0);
    }
    for r in &f.fregs {
        w.u32(*r);
    }
    w.u32(f.pc);
    w.u32(f.npc);
    w.u32(f.psr.to_word().0);
}

fn decode_saved_frame(r: &mut ByteReader<'_>) -> Result<SavedFrame, WireError> {
    let mut regs = [Word::ZERO; REGS_PER_FRAME];
    for reg in &mut regs {
        *reg = Word(r.u32()?);
    }
    let mut fregs = [0u32; FREGS_PER_FRAME];
    for reg in &mut fregs {
        *reg = r.u32()?;
    }
    Ok(SavedFrame {
        regs,
        fregs,
        pc: r.u32()?,
        npc: r.u32()?,
        psr: Psr::from_word(Word(r.u32()?)),
    })
}

fn encode_state(s: &ThreadState, w: &mut ByteWriter) {
    match s {
        ThreadState::Ready => w.u8(0),
        ThreadState::Loaded { node, frame } => {
            w.u8(1);
            w.usize(*node);
            w.usize(*frame);
        }
        ThreadState::Blocked { future } => {
            w.u8(2);
            w.u32(*future);
        }
        ThreadState::Exited => w.u8(3),
    }
}

fn decode_state(r: &mut ByteReader<'_>) -> Result<ThreadState, WireError> {
    Ok(match r.u8()? {
        0 => ThreadState::Ready,
        1 => ThreadState::Loaded {
            node: r.usize()?,
            frame: r.usize()?,
        },
        2 => ThreadState::Blocked { future: r.u32()? },
        3 => ThreadState::Exited,
        _ => return Err(WireError::Corrupt("unknown thread state tag")),
    })
}

fn encode_thread(t: &Thread, w: &mut ByteWriter) {
    w.u32(t.id.0);
    for r in &t.regs {
        w.u32(r.0);
    }
    for r in &t.fregs {
        w.u32(*r);
    }
    w.u32(t.pc);
    w.u32(t.npc);
    w.u32(t.psr.to_word().0);
    encode_state(&t.state, w);
    w.usize(t.home);
    w.u32(t.stack_base);
    w.usize(t.shadow.len());
    for f in &t.shadow {
        encode_saved_frame(f, w);
    }
    w.bool(t.started);
}

fn decode_thread(r: &mut ByteReader<'_>) -> Result<Thread, WireError> {
    let id = ThreadId(r.u32()?);
    let mut t = Thread::fresh(id, 0, 0);
    for reg in &mut t.regs {
        *reg = Word(r.u32()?);
    }
    for reg in &mut t.fregs {
        *reg = r.u32()?;
    }
    t.pc = r.u32()?;
    t.npc = r.u32()?;
    t.psr = Psr::from_word(Word(r.u32()?));
    t.state = decode_state(r)?;
    t.home = r.usize()?;
    t.stack_base = r.u32()?;
    let shadows = r.usize()?;
    t.shadow = (0..shadows)
        .map(|_| decode_saved_frame(r))
        .collect::<Result<_, _>>()?;
    t.started = r.bool()?;
    Ok(t)
}

fn encode_sched(s: &Scheduler, w: &mut ByteWriter) {
    w.usize(s.nodes.len());
    for q in &s.nodes {
        w.usize(q.ready.len());
        for t in &q.ready {
            w.u32(t.0);
        }
        w.usize(q.lazy.len());
        for f in &q.lazy {
            w.u32(*f);
        }
    }
    w.usize(s.spawn_rr);
    let st = s.stats;
    for c in [
        st.threads_created,
        st.lazy_created,
        st.inline_evals,
        st.lazy_steals,
        st.ready_steals,
        st.blocks,
        st.wakes,
        st.loads,
        st.unloads,
    ] {
        w.u64(c);
    }
}

fn decode_sched(r: &mut ByteReader<'_>) -> Result<Scheduler, WireError> {
    let n = r.usize()?;
    let mut s = Scheduler::new(n.max(1));
    s.nodes.clear();
    for _ in 0..n {
        let mut q = NodeQueues::default();
        for _ in 0..r.usize()? {
            q.ready.push_back(ThreadId(r.u32()?));
        }
        for _ in 0..r.usize()? {
            q.lazy.push_back(r.u32()?);
        }
        s.nodes.push(q);
    }
    s.spawn_rr = r.usize()?;
    s.stats.threads_created = r.u64()?;
    s.stats.lazy_created = r.u64()?;
    s.stats.inline_evals = r.u64()?;
    s.stats.lazy_steals = r.u64()?;
    s.stats.ready_steals = r.u64()?;
    s.stats.blocks = r.u64()?;
    s.stats.wakes = r.u64()?;
    s.stats.loads = r.u64()?;
    s.stats.unloads = r.u64()?;
    Ok(s)
}

fn encode_futures(f: &FutureTable, w: &mut ByteWriter) {
    let mut entries: Vec<_> = f.map.iter().collect();
    entries.sort_by_key(|(addr, _)| **addr);
    w.usize(entries.len());
    for (addr, info) in entries {
        w.u32(*addr);
        w.usize(info.waiters.len());
        for t in &info.waiters {
            w.u32(t.0);
        }
        match &info.lazy {
            Some(LazyThunk { closure, owner }) => {
                w.bool(true);
                w.u32(closure.0);
                w.usize(*owner);
            }
            None => w.bool(false),
        }
    }
}

fn decode_futures(r: &mut ByteReader<'_>) -> Result<FutureTable, WireError> {
    let mut f = FutureTable::new();
    for _ in 0..r.usize()? {
        let addr = r.u32()?;
        let waiters = (0..r.usize()?)
            .map(|_| r.u32().map(ThreadId))
            .collect::<Result<_, _>>()?;
        let lazy = if r.bool()? {
            Some(LazyThunk {
                closure: Word(r.u32()?),
                owner: r.usize()?,
            })
        } else {
            None
        };
        if f.map.insert(addr, FutureInfo { waiters, lazy }).is_some() {
            return Err(WireError::Corrupt("duplicate future address"));
        }
    }
    Ok(f)
}

fn encode_layout(l: &NodeLayout, w: &mut ByteWriter) {
    encode_alloc(&l.heap, w);
    encode_alloc(&l.stacks, w);
    w.usize(l.free_stacks.len());
    for s in &l.free_stacks {
        w.u32(*s);
    }
    w.u32(l.stack_bytes);
}

fn decode_layout(r: &mut ByteReader<'_>) -> Result<NodeLayout, WireError> {
    let heap = decode_alloc(r)?;
    let stacks = decode_alloc(r)?;
    let free_stacks = (0..r.usize()?).map(|_| r.u32()).collect::<Result<_, _>>()?;
    Ok(NodeLayout {
        heap,
        stacks,
        free_stacks,
        stack_bytes: r.u32()?,
    })
}

// ---------------------------------------------------------------------
// Checkpoint / restore
// ---------------------------------------------------------------------

impl<M: Machine> Runtime<M> {
    /// Serializes the complete run-time state — the wrapped machine
    /// (via [`Machine::checkpoint`]) plus threads, queues, futures,
    /// allocators, and the scheduler probe — into a self-contained
    /// [`RuntimeSnapshot`].
    ///
    /// # Errors
    ///
    /// Propagates the machine's [`SnapshotError`]: `Unsupported` when
    /// the wrapped machine type cannot checkpoint, `Faulted` when it
    /// is stopped on a machine fault.
    pub fn checkpoint(&mut self) -> Result<RuntimeSnapshot, SnapshotError> {
        let msnap = self.machine.checkpoint()?;
        let mut w = ByteWriter::new();
        w.bytes(MAGIC);
        w.u8(VERSION);
        w.str(&format!("{:?}", self.cfg));
        w.bytes(msnap.as_bytes());
        w.usize(self.threads.len());
        for t in &self.threads {
            encode_thread(t, &mut w);
        }
        encode_sched(&self.sched, &mut w);
        encode_futures(&self.futures, &mut w);
        w.usize(self.layouts.len());
        for l in &self.layouts {
            encode_layout(l, &mut w);
        }
        w.usize(self.loaded.len());
        for frames in &self.loaded {
            w.usize(frames.len());
            for slot in frames {
                match slot {
                    Some(t) => {
                        w.bool(true);
                        w.u32(t.0);
                    }
                    None => w.bool(false),
                }
            }
        }
        match self.result {
            Some(v) => {
                w.bool(true);
                w.u32(v.0);
            }
            None => w.bool(false),
        }
        w.usize(self.prints.len());
        for p in &self.prints {
            w.u32(p.0);
        }
        w.u32(self.task_entry);
        match self.inline_entry {
            Some(e) => {
                w.bool(true);
                w.u32(e);
            }
            None => w.bool(false),
        }
        w.bool(self.booted);
        let mut spins: Vec<_> = self.fe_spins.iter().collect();
        spins.sort_by_key(|(k, _)| **k);
        w.usize(spins.len());
        for (&(node, frame), &(addr, count)) in spins {
            w.usize(node);
            w.usize(frame);
            w.u32(addr);
            w.u32(count);
        }
        w.usize(self.fe_waiters.len());
        for &(t, addr, wants_empty) in &self.fe_waiters {
            w.u32(t.0);
            w.u32(addr);
            w.bool(wants_empty);
        }
        self.probe.encode(&mut w);
        Ok(RuntimeSnapshot { bytes: w.finish() })
    }

    /// Restores `snap` into this run-time. The run-time must be
    /// constructed with the same [`RtConfig`](crate::config::RtConfig)
    /// and an identically-configured machine as the checkpointed one
    /// (validated; the embedded machine snapshot additionally
    /// validates the machine configuration and program image).
    /// Continuing afterwards reproduces the original run bit-exactly.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::ConfigMismatch`] when the run-time
    /// configuration differs, plus everything [`Machine::restore`]
    /// reports. After an error the run-time's state is unspecified —
    /// rebuild it rather than continuing.
    pub fn restore(&mut self, snap: &RuntimeSnapshot) -> Result<(), SnapshotError> {
        let mut r = ByteReader::new(&snap.bytes);
        if r.bytes()? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(SnapshotError::Version(version));
        }
        if r.str()? != format!("{:?}", self.cfg) {
            return Err(SnapshotError::ConfigMismatch);
        }
        let msnap = Snapshot::from_bytes(r.bytes()?.to_vec())?;
        self.machine.restore(&msnap)?;
        let n = self.machine.num_procs();
        let threads = r.usize()?;
        self.threads = (0..threads)
            .map(|_| decode_thread(&mut r))
            .collect::<Result<_, _>>()?;
        for (i, t) in self.threads.iter().enumerate() {
            if t.id.0 as usize != i {
                return Err(WireError::Corrupt("thread id out of sequence").into());
            }
        }
        self.sched = decode_sched(&mut r)?;
        if self.sched.num_nodes() != n {
            return Err(WireError::Corrupt("scheduler node count mismatch").into());
        }
        self.futures = decode_futures(&mut r)?;
        let layouts = r.usize()?;
        if layouts != n {
            return Err(WireError::Corrupt("layout count mismatch").into());
        }
        self.layouts = (0..layouts)
            .map(|_| decode_layout(&mut r))
            .collect::<Result<_, _>>()?;
        let nodes = r.usize()?;
        if nodes != n {
            return Err(WireError::Corrupt("loaded-map node count mismatch").into());
        }
        let mut loaded = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let frames = r.usize()?;
            let mut row = Vec::with_capacity(frames);
            for _ in 0..frames {
                row.push(if r.bool()? {
                    let t = ThreadId(r.u32()?);
                    if t.0 as usize >= self.threads.len() {
                        return Err(WireError::Corrupt("loaded thread out of range").into());
                    }
                    Some(t)
                } else {
                    None
                });
            }
            loaded.push(row);
        }
        self.loaded = loaded;
        self.result = if r.bool()? {
            Some(Word(r.u32()?))
        } else {
            None
        };
        self.prints = (0..r.usize()?)
            .map(|_| r.u32().map(Word))
            .collect::<Result<_, _>>()?;
        self.task_entry = r.u32()?;
        self.inline_entry = if r.bool()? { Some(r.u32()?) } else { None };
        self.booted = r.bool()?;
        self.fe_spins.clear();
        for _ in 0..r.usize()? {
            let key = (r.usize()?, r.usize()?);
            let val = (r.u32()?, r.u32()?);
            if self.fe_spins.insert(key, val).is_some() {
                return Err(WireError::Corrupt("duplicate fe-spin key").into());
            }
        }
        self.fe_waiters = (0..r.usize()?)
            .map(|_| Ok::<_, WireError>((ThreadId(r.u32()?), r.u32()?, r.bool()?)))
            .collect::<Result<_, _>>()?;
        self.probe = Probe::decode(&mut r)?;
        if !r.is_empty() {
            return Err(WireError::Corrupt("trailing bytes after runtime snapshot").into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi;
    use crate::config::RtConfig;
    use april_core::isa::asm::assemble;
    use april_core::program::Program;
    use april_machine::{Alewife, MachineConfig, Topology};
    use april_obs::TraceConfig;

    const REGION: u32 = 1 << 20;

    fn mcfg() -> MachineConfig {
        MachineConfig {
            topology: Topology::new(2, 2),
            region_bytes: REGION,
            ..MachineConfig::default()
        }
    }

    fn rtcfg() -> RtConfig {
        RtConfig {
            region_bytes: REGION,
            stack_bytes: 4096,
            max_cycles: 10_000_000,
            ..RtConfig::default()
        }
    }

    /// A fan-out/join program: spawn 6 eager futures, sum via strict
    /// touches. Exercises threads, queues, futures, and blocking.
    fn prog() -> Program {
        let body = "
        .entry main
        main:
            movi 0, r10        ; sum
            movi 6, r11        ; count
            movi 0x200, r12    ; future array base
        spawn:
            or g5, 0, g1
            add g5, 8, g5
            movi @five, g2
            st g2, g1+0
            or g1, 2, r1       ; other-tag the closure
            rtcall 2           ; RT_FUTURE -> r1
            st r1, r12+0
            add r12, 4, r12
            sub r11, 1, r11
            jne spawn
            nop
            movi 6, r11
            movi 0x200, r12
        join:
            ld r12+0, r13
            tadd r10, r13, r10 ; strict add: touches the future
            add r12, 4, r12
            sub r11, 1, r11
            jne join
            nop
            or r10, 0, r1
            rtcall 1           ; RT_MAIN_DONE
        five:
            movi 20, r1        ; fixnum 5
            jmpl r31+0, g0
            nop
        ";
        let src = format!("{}\n{}", body, abi::entry_stubs_asm());
        assemble(&src).unwrap()
    }

    fn fresh_rt() -> Runtime<Alewife> {
        let m = Alewife::new(mcfg(), prog());
        let mut rt = Runtime::new(m, rtcfg());
        rt.attach_tracer(TraceConfig::default());
        rt
    }

    #[test]
    fn runtime_checkpoint_restore_roundtrips_mid_run() {
        // Unbroken reference run.
        let mut reference = fresh_rt();
        let ref_result = reference.run().unwrap();

        // Checkpoint mid-run, while threads and futures are in flight.
        let mut rt = fresh_rt();
        let paused = rt.run_until(400).unwrap();
        assert!(paused.is_none(), "program finished before the checkpoint");
        let snap = rt.checkpoint().unwrap();
        assert_eq!(snap.cycle(), rt.machine().now());

        // Restore into a fresh runtime and finish there.
        let mut restored = fresh_rt();
        restored.restore(&snap).unwrap();
        let result = restored.run().unwrap();

        assert_eq!(result.value, ref_result.value);
        assert_eq!(result.cycles, ref_result.cycles);
        assert_eq!(result.total, ref_result.total);
        assert_eq!(result.sched, ref_result.sched);
        assert_eq!(
            restored.collect_trace().events(),
            reference.collect_trace().events(),
            "continued trace must be identical to the unbroken run's"
        );
        assert_eq!(
            restored.stats_report().to_json(),
            reference.stats_report().to_json()
        );
    }

    #[test]
    fn snapshot_bytes_are_stable_and_reloadable() {
        let mut rt = fresh_rt();
        rt.run_until(300).unwrap();
        let a = rt.checkpoint().unwrap();
        let b = rt.checkpoint().unwrap();
        assert_eq!(a, b, "checkpoint must be a pure read");
        let reloaded = RuntimeSnapshot::from_bytes(a.as_bytes().to_vec()).unwrap();
        assert_eq!(reloaded, a);

        let mut restored = fresh_rt();
        restored.restore(&reloaded).unwrap();
        let again = restored.checkpoint().unwrap();
        assert_eq!(again, a, "restore/re-checkpoint must be a fixed point");
    }

    #[test]
    fn restore_rejects_mismatched_runtime_config() {
        let mut rt = fresh_rt();
        rt.run_until(200).unwrap();
        let snap = rt.checkpoint().unwrap();
        let m = Alewife::new(mcfg(), prog());
        let mut other = Runtime::new(
            m,
            RtConfig {
                stack_bytes: 8192,
                ..rtcfg()
            },
        );
        other.attach_tracer(TraceConfig::default());
        assert!(matches!(
            other.restore(&snap),
            Err(SnapshotError::ConfigMismatch)
        ));
    }

    #[test]
    fn from_bytes_validates_the_wrapper_header() {
        let mut rt = fresh_rt();
        rt.run_until(100).unwrap();
        let snap = rt.checkpoint().unwrap();
        let bytes = snap.as_bytes().to_vec();

        let mut wrong_magic = bytes.clone();
        wrong_magic[8] = b'X'; // magic text starts after its length prefix
        assert!(matches!(
            RuntimeSnapshot::from_bytes(wrong_magic),
            Err(SnapshotError::BadMagic)
        ));

        let mut wrong_version = bytes.clone();
        wrong_version[12] = 99;
        assert!(matches!(
            RuntimeSnapshot::from_bytes(wrong_version),
            Err(SnapshotError::Version(99))
        ));

        // Truncating into the embedded machine snapshot is caught (the
        // runtime payload after it is validated at restore time).
        assert!(RuntimeSnapshot::from_bytes(bytes[..bytes.len() / 2].to_vec()).is_err());
    }
}
