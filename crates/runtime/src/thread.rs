//! Virtual threads.
//!
//! "Threads in ALEWIFE are virtual. Only a small subset of all threads
//! can be physically resident on the processors; these threads are
//! called loaded threads. The remaining threads are referred to as
//! unloaded threads and live on various queues in memory, waiting
//! their turn to be loaded" (paper, Section 3).

use april_core::frame::{FREGS_PER_FRAME, REGS_PER_FRAME};
use april_core::psr::Psr;
use april_core::word::Word;

/// Identifies a virtual thread for the lifetime of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Where a thread currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// On some node's ready queue, waiting to be loaded.
    Ready,
    /// Resident in a hardware task frame.
    Loaded {
        /// Node index.
        node: usize,
        /// Task frame index.
        frame: usize,
    },
    /// Unloaded, waiting for a future to resolve.
    Blocked {
        /// The future's byte address.
        future: u32,
    },
    /// Finished.
    Exited,
}

/// A saved register image for nested inline (lazy) thunk evaluation:
/// the touch handler pushes the interrupted frame here and redirects
/// the thread into the thunk; `RT_RESUME` pops it.
#[derive(Debug, Clone)]
pub struct SavedFrame {
    /// General registers.
    pub regs: [Word; REGS_PER_FRAME],
    /// Floating-point registers.
    pub fregs: [u32; FREGS_PER_FRAME],
    /// Program counter at the touching instruction (retried on resume).
    pub pc: u32,
    /// Next program counter.
    pub npc: u32,
    /// Processor state register.
    pub psr: Psr,
}

/// A virtual thread: saved processor state plus scheduling metadata.
#[derive(Debug, Clone)]
pub struct Thread {
    /// Identity.
    pub id: ThreadId,
    /// Saved general registers (valid while not loaded).
    pub regs: [Word; REGS_PER_FRAME],
    /// Saved floating-point registers.
    pub fregs: [u32; FREGS_PER_FRAME],
    /// Saved PC.
    pub pc: u32,
    /// Saved nPC.
    pub npc: u32,
    /// Saved PSR.
    pub psr: Psr,
    /// Current state.
    pub state: ThreadState,
    /// The node this thread last ran on (locality preference).
    pub home: usize,
    /// Stack segment base (0 until first load).
    pub stack_base: u32,
    /// Saved-frame stack for nested inline evaluations.
    pub shadow: Vec<SavedFrame>,
    /// True if the thread has run at least once (its registers are a
    /// full image rather than just arguments).
    pub started: bool,
}

impl Thread {
    /// Creates a fresh thread that will start at `pc` on (preferably)
    /// node `home`. Registers start zeroed; the spawner fills argument
    /// registers before enqueueing.
    pub fn fresh(id: ThreadId, pc: u32, home: usize) -> Thread {
        Thread {
            id,
            regs: [Word::ZERO; REGS_PER_FRAME],
            fregs: [0; FREGS_PER_FRAME],
            pc,
            npc: pc + 1,
            psr: Psr::user(),
            state: ThreadState::Ready,
            home,
            stack_base: 0,
            shadow: Vec::new(),
            started: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_thread_is_ready_at_entry() {
        let t = Thread::fresh(ThreadId(3), 100, 2);
        assert_eq!(t.state, ThreadState::Ready);
        assert_eq!(t.pc, 100);
        assert_eq!(t.npc, 101);
        assert_eq!(t.home, 2);
        assert!(!t.started);
        assert!(t.shadow.is_empty());
    }

    #[test]
    fn thread_id_display() {
        assert_eq!(ThreadId(7).to_string(), "t7");
    }
}
