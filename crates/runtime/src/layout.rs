//! Per-node memory layout.
//!
//! The global address space is region-partitioned: node `i` owns
//! `[i·R, (i+1)·R)`. Within its region each node keeps a heap (bump
//! allocated, refilled chunk-wise into the processor's `g5`/`g6`
//! allocation registers) and a pool of thread stacks. Node 0's first
//! page is reserved for the data singletons (`'()`, `#t`, `#f`) and
//! the program's static image.

use crate::abi;
use crate::config::RtConfig;
use april_core::word::Word;
use april_mem::alloc::BumpAllocator;
use april_mem::femem::FeMemory;

/// Bytes reserved at the bottom of node 0's region for singletons and
/// static data.
pub const RESERVED_BYTES: u32 = 64 * 1024;

/// Allocation state for one node's region.
#[derive(Debug, Clone)]
pub struct NodeLayout {
    /// Heap chunks come from here.
    pub heap: BumpAllocator,
    /// Stack segments come from here.
    pub(crate) stacks: BumpAllocator,
    pub(crate) free_stacks: Vec<u32>,
    pub(crate) stack_bytes: u32,
}

/// Size of the heap chunk installed into `g5`/`g6` at a time.
pub const HEAP_CHUNK_BYTES: u32 = 64 * 1024;

impl NodeLayout {
    /// Lays out node `i`'s region per `cfg`.
    pub fn new(node: usize, cfg: &RtConfig) -> NodeLayout {
        let base = node as u32 * cfg.region_bytes;
        let end = base + cfg.region_bytes;
        let heap_base = if node == 0 {
            base + RESERVED_BYTES
        } else {
            base
        };
        // Half heap, half stacks: eager fine-grain programs hold a
        // stack per live task, so the pool must be deep.
        let stack_base = base + cfg.region_bytes / 2;
        NodeLayout {
            heap: BumpAllocator::new(heap_base, stack_base),
            stacks: BumpAllocator::new(stack_base, end),
            free_stacks: Vec::new(),
            stack_bytes: cfg.stack_bytes,
        }
    }

    /// Allocates a heap chunk for the processor's inline allocator,
    /// returning `(g5, g6)` = (pointer, limit).
    ///
    /// # Panics
    ///
    /// Panics when the node heap is exhausted (simulated OOM).
    pub fn heap_chunk(&mut self) -> (u32, u32) {
        let chunk = HEAP_CHUNK_BYTES.min(self.heap.remaining());
        let base = self
            .heap
            .alloc(chunk, 8)
            .unwrap_or_else(|e| panic!("node heap exhausted: {e}"));
        (base, base + chunk)
    }

    /// Allocates a small runtime object (future records etc.) directly.
    ///
    /// # Panics
    ///
    /// Panics on simulated OOM.
    pub fn alloc(&mut self, bytes: u32) -> u32 {
        self.heap
            .alloc(bytes, 8)
            .unwrap_or_else(|e| panic!("node heap exhausted: {e}"))
    }

    /// Takes a stack segment (recycled if available), returning its
    /// base address.
    ///
    /// # Panics
    ///
    /// Panics when the stack pool is exhausted.
    pub fn take_stack(&mut self) -> u32 {
        if let Some(s) = self.free_stacks.pop() {
            return s;
        }
        self.stacks
            .alloc(self.stack_bytes, 8)
            .unwrap_or_else(|e| panic!("stack pool exhausted: {e}"))
    }

    /// Returns a stack segment to the pool.
    pub fn release_stack(&mut self, base: u32) {
        self.free_stacks.push(base);
    }
}

/// Writes the data-representation singletons into node 0's reserved
/// page (they are `other`-tagged records whose first word names the
/// type, so `(null? x)` style checks can also inspect memory).
pub fn init_singletons(mem: &mut FeMemory) {
    mem.write(abi::NIL_ADDR, Word::fixnum(-1));
    mem.write(abi::TRUE_ADDR, Word::fixnum(-2));
    mem.write(abi::FALSE_ADDR, Word::fixnum(-3));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RtConfig {
        RtConfig {
            region_bytes: 1 << 20,
            stack_bytes: 4096,
            ..RtConfig::default()
        }
    }

    #[test]
    fn node0_heap_skips_reserved_page() {
        let l = NodeLayout::new(0, &cfg());
        assert!(l.heap.base() >= RESERVED_BYTES);
        let l1 = NodeLayout::new(1, &cfg());
        assert_eq!(l1.heap.base(), 1 << 20);
    }

    #[test]
    fn heap_chunks_are_disjoint() {
        let mut l = NodeLayout::new(1, &cfg());
        let (a0, a1) = l.heap_chunk();
        let (b0, _b1) = l.heap_chunk();
        assert!(a1 <= b0);
        assert_eq!(a1 - a0, HEAP_CHUNK_BYTES);
    }

    #[test]
    fn stacks_recycle() {
        let mut l = NodeLayout::new(0, &cfg());
        let s1 = l.take_stack();
        let s2 = l.take_stack();
        assert_ne!(s1, s2);
        l.release_stack(s1);
        assert_eq!(l.take_stack(), s1);
    }

    #[test]
    fn singletons_written() {
        let mut mem = FeMemory::new(4096);
        init_singletons(&mut mem);
        assert_eq!(mem.read(abi::NIL_ADDR), Word::fixnum(-1));
        assert_eq!(mem.read(abi::FALSE_ADDR), Word::fixnum(-3));
    }
}
