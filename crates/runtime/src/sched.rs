//! Thread scheduling queues.
//!
//! "In APRIL, thread scheduling is done in software, and unlimited
//! virtual dynamic threads are supported" (paper, Section 1). Each
//! node keeps a ready queue of unloaded threads and a lazy-task queue
//! of stealable thunk descriptors; idle processors first drain their
//! own queues, then steal — ready threads or, preferentially for
//! granularity, the *oldest* lazy thunk of a victim (Mohr-style lazy
//! task creation steals outermost work).

use crate::thread::ThreadId;
use std::collections::VecDeque;

/// Scheduler event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Eager threads created.
    pub threads_created: u64,
    /// Lazy futures created.
    pub lazy_created: u64,
    /// Lazy thunks evaluated inline by their creator.
    pub inline_evals: u64,
    /// Lazy thunks stolen and promoted to threads.
    pub lazy_steals: u64,
    /// Ready threads stolen from other nodes.
    pub ready_steals: u64,
    /// Threads blocked on futures.
    pub blocks: u64,
    /// Threads woken by future resolution.
    pub wakes: u64,
    /// Threads loaded into task frames.
    pub loads: u64,
    /// Threads unloaded from task frames.
    pub unloads: u64,
}

/// One node's queues.
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeQueues {
    pub(crate) ready: VecDeque<ThreadId>,
    pub(crate) lazy: VecDeque<u32>, // future addresses with unstolen thunks
}

/// The distributed scheduler state.
#[derive(Debug, Clone)]
pub struct Scheduler {
    pub(crate) nodes: Vec<NodeQueues>,
    pub(crate) spawn_rr: usize,
    /// Event counters.
    pub stats: SchedStats,
}

impl Scheduler {
    /// Creates queues for `n` nodes.
    pub fn new(n: usize) -> Scheduler {
        Scheduler {
            nodes: vec![NodeQueues::default(); n],
            spawn_rr: 0,
            stats: SchedStats::default(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Picks the node for the next eager spawn (round robin, the
    /// default placement when `future-on` is not used).
    pub fn next_spawn_node(&mut self) -> usize {
        let n = self.spawn_rr;
        self.spawn_rr = (self.spawn_rr + 1) % self.nodes.len();
        n
    }

    /// Enqueues a ready thread on `node`.
    pub fn enqueue_ready(&mut self, node: usize, t: ThreadId) {
        self.nodes[node].ready.push_back(t);
    }

    /// Dequeues a ready thread from `node`'s own queue.
    pub fn dequeue_ready(&mut self, node: usize) -> Option<ThreadId> {
        self.nodes[node].ready.pop_front()
    }

    /// Steals a ready thread from the fullest other node.
    pub fn steal_ready(&mut self, thief: usize) -> Option<(ThreadId, usize)> {
        let victim = (0..self.nodes.len())
            .filter(|&v| v != thief && !self.nodes[v].ready.is_empty())
            .max_by_key(|&v| self.nodes[v].ready.len())?;
        let t = self.nodes[victim].ready.pop_front().expect("nonempty");
        self.stats.ready_steals += 1;
        Some((t, victim))
    }

    /// Pushes a lazy thunk descriptor (newest at the back).
    pub fn push_lazy(&mut self, node: usize, future: u32) {
        self.nodes[node].lazy.push_back(future);
    }

    /// Removes a specific lazy descriptor from `node`'s queue (the
    /// creator claiming its own thunk at touch time). Returns false if
    /// it was already stolen.
    pub fn remove_lazy(&mut self, node: usize, future: u32) -> bool {
        let q = &mut self.nodes[node].lazy;
        match q.iter().position(|&f| f == future) {
            Some(i) => {
                q.remove(i);
                true
            }
            None => false,
        }
    }

    /// Steals the *oldest* lazy thunk from the victim with the longest
    /// lazy queue (oldest = outermost = coarsest grain).
    pub fn steal_lazy(&mut self, thief: usize) -> Option<(u32, usize)> {
        let victim = (0..self.nodes.len())
            .filter(|&v| v != thief && !self.nodes[v].lazy.is_empty())
            .max_by_key(|&v| self.nodes[v].lazy.len())?;
        let f = self.nodes[victim].lazy.pop_front().expect("nonempty");
        self.stats.lazy_steals += 1;
        Some((f, victim))
    }

    /// Steals the oldest lazy thunk from the thief's *own* queue (used
    /// when a processor goes idle with local lazy work pending).
    pub fn pop_own_lazy(&mut self, node: usize) -> Option<u32> {
        self.nodes[node].lazy.pop_front()
    }

    /// Total ready threads across all nodes.
    pub fn total_ready(&self) -> usize {
        self.nodes.iter().map(|n| n.ready.len()).sum()
    }

    /// Total unstolen lazy thunks across all nodes.
    pub fn total_lazy(&self) -> usize {
        self.nodes.iter().map(|n| n.lazy.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_spawn_placement() {
        let mut s = Scheduler::new(3);
        assert_eq!(
            (0..7).map(|_| s.next_spawn_node()).collect::<Vec<_>>(),
            vec![0, 1, 2, 0, 1, 2, 0]
        );
    }

    #[test]
    fn ready_queue_fifo() {
        let mut s = Scheduler::new(2);
        s.enqueue_ready(0, ThreadId(1));
        s.enqueue_ready(0, ThreadId(2));
        assert_eq!(s.dequeue_ready(0), Some(ThreadId(1)));
        assert_eq!(s.dequeue_ready(0), Some(ThreadId(2)));
        assert_eq!(s.dequeue_ready(0), None);
    }

    #[test]
    fn steal_takes_from_fullest_victim() {
        let mut s = Scheduler::new(3);
        s.enqueue_ready(1, ThreadId(1));
        s.enqueue_ready(2, ThreadId(2));
        s.enqueue_ready(2, ThreadId(3));
        let (t, v) = s.steal_ready(0).unwrap();
        assert_eq!((t, v), (ThreadId(2), 2));
        assert_eq!(s.stats.ready_steals, 1);
    }

    #[test]
    fn lazy_steal_takes_oldest() {
        let mut s = Scheduler::new(2);
        s.push_lazy(0, 0x10);
        s.push_lazy(0, 0x20);
        let (f, v) = s.steal_lazy(1).unwrap();
        assert_eq!((f, v), (0x10, 0), "oldest thunk is the coarsest grain");
    }

    #[test]
    fn creator_claims_specific_thunk() {
        let mut s = Scheduler::new(1);
        s.push_lazy(0, 0x10);
        s.push_lazy(0, 0x20);
        assert!(s.remove_lazy(0, 0x20));
        assert!(!s.remove_lazy(0, 0x20), "already claimed");
        assert_eq!(s.total_lazy(), 1);
    }

    #[test]
    fn no_self_steal() {
        let mut s = Scheduler::new(2);
        s.enqueue_ready(0, ThreadId(1));
        assert!(s.steal_ready(0).is_none());
        s.push_lazy(0, 0x10);
        assert!(s.steal_lazy(0).is_none());
    }
}
