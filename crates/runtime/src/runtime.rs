//! The APRIL run-time system.
//!
//! "Since a large portion of the support for multithreading,
//! synchronization and futures is provided in software through traps
//! and run-time routines, trap handling must be fast" (paper, Section
//! 6). This module is that software system: it drives a
//! [`Machine`] cycle by cycle and services every event the processor
//! reports — remote-miss context switches, full/empty synchronization
//! faults, future touches, and the run-time calls compiled code makes
//! for task creation and scheduling.
//!
//! Handler *policies* and cycle costs follow the paper (11-cycle
//! SPARC context switch, 23-cycle resolved future touch); handler
//! bodies execute at host level with those costs charged to the
//! processor's cycle ledger, a substitution documented in DESIGN.md.

use crate::abi;
use crate::config::{FePolicy, RtConfig, TouchPolicy};
use crate::futures::{FutureTable, LazyThunk, FUTURE_BYTES};
use crate::layout::{init_singletons, NodeLayout};
use crate::sched::{SchedStats, Scheduler};
use crate::thread::{SavedFrame, Thread, ThreadId, ThreadState};
use april_core::cpu::StepEvent;
use april_core::frame::FrameState;
use april_core::isa::Reg;
use april_core::stats::CpuStats;
use april_core::trap::Trap;
use april_core::word::Word;
use april_machine::Machine;
use april_obs::{lane, Component, EventKind, Probe, Section, StatsReport, Trace, TraceConfig};

/// The outcome of a completed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The root thread's result (`r1` at `RT_MAIN_DONE`).
    pub value: Word,
    /// Total elapsed cycles.
    pub cycles: u64,
    /// Merged processor ledger.
    pub total: CpuStats,
    /// Per-processor ledgers.
    pub per_cpu: Vec<CpuStats>,
    /// Scheduler counters.
    pub sched: SchedStats,
    /// Values printed via `RT_PRINT`, in order.
    pub prints: Vec<Word>,
}

/// The run-time system wrapped around a machine.
///
/// # Examples
///
/// See the crate-level documentation and `tests/` for complete
/// programs; the shape is:
///
/// ```no_run
/// # use april_runtime::runtime::Runtime;
/// # use april_runtime::config::RtConfig;
/// # use april_machine::IdealMachine;
/// # let prog = april_core::program::Program::default();
/// let machine = IdealMachine::new(4, 1 << 22, prog);
/// let mut rt = Runtime::new(machine, RtConfig::default());
/// let result = rt.run().expect("program completes");
/// println!("result = {}", result.value);
/// ```
#[derive(Debug)]
pub struct Runtime<M: Machine> {
    pub(crate) machine: M,
    pub(crate) cfg: RtConfig,
    pub(crate) threads: Vec<Thread>,
    pub(crate) sched: Scheduler,
    pub(crate) futures: FutureTable,
    pub(crate) layouts: Vec<NodeLayout>,
    /// Which thread occupies each (node, frame).
    pub(crate) loaded: Vec<Vec<Option<ThreadId>>>,
    pub(crate) result: Option<Word>,
    pub(crate) prints: Vec<Word>,
    pub(crate) task_entry: u32,
    pub(crate) inline_entry: Option<u32>,
    pub(crate) booted: bool,
    /// Consecutive full/empty faults per (node, frame) on one address,
    /// for the `BlockAfterSpins` policy.
    pub(crate) fe_spins: std::collections::HashMap<(usize, usize), (u32, u32)>,
    /// Threads unloaded waiting for a word's full/empty state to
    /// change: (thread, address, wants_empty).
    pub(crate) fe_waiters: Vec<(ThreadId, u32, bool)>,
    /// Scheduler-lane event recorder (thread spawn/block/resume, lazy
    /// task creation). Inert until [`Runtime::attach_tracer`].
    pub(crate) probe: Probe,
}

/// Run failure: the simulated program misbehaved or hung.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// No instruction retired for a long interval with no result.
    Deadlock {
        /// Cycle at which the hang was detected.
        at: u64,
        /// Threads blocked on futures.
        blocked: usize,
        /// Threads in ready queues.
        ready: usize,
    },
    /// The cycle fuse was exceeded.
    CycleLimit(u64),
    /// A simulated program fault (alignment, divide by zero).
    Fault {
        /// The trap.
        what: String,
        /// Faulting node.
        node: usize,
        /// Program counter.
        pc: u32,
    },
    /// The machine itself failed: a protocol engine reported a fatal
    /// error or the forward-progress watchdog fired. Carries the full
    /// structured post-mortem.
    MachineFault(Box<april_machine::MachineFault>),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Deadlock { at, blocked, ready } => {
                write!(
                    f,
                    "deadlock at cycle {at}: {blocked} blocked, {ready} ready"
                )
            }
            RunError::CycleLimit(n) => write!(f, "exceeded cycle limit {n}"),
            RunError::Fault { what, node, pc } => {
                write!(f, "fault on node {node} at pc {pc}: {what}")
            }
            RunError::MachineFault(fault) => write!(f, "machine fault: {fault}"),
        }
    }
}

impl std::error::Error for RunError {}

impl<M: Machine> Runtime<M> {
    /// Wraps `machine` with a run-time system configured by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the machine's memory is smaller than
    /// `num_procs × cfg.region_bytes`.
    pub fn new(machine: M, cfg: RtConfig) -> Runtime<M> {
        let n = machine.num_procs();
        assert!(
            machine.mem().len_bytes() >= n * cfg.region_bytes as usize,
            "machine memory too small for {n} regions of {} bytes",
            cfg.region_bytes
        );
        let task_entry = machine.program().label(abi::TASK_ENTRY_LABEL).unwrap_or(0);
        let inline_entry = machine.program().label(abi::INLINE_ENTRY_LABEL);
        let nframes = machine.cpu(0).nframes();
        Runtime {
            layouts: (0..n).map(|i| NodeLayout::new(i, &cfg)).collect(),
            loaded: vec![vec![None; nframes]; n],
            machine,
            cfg,
            threads: Vec::new(),
            sched: Scheduler::new(n),
            futures: FutureTable::new(),
            result: None,
            prints: Vec::new(),
            task_entry,
            inline_entry,
            booted: false,
            fe_spins: std::collections::HashMap::new(),
            fe_waiters: Vec::new(),
            probe: Probe::default(),
        }
    }

    /// The wrapped machine (for inspection).
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Installs live event probes on the machine's components and on
    /// the run-time scheduler itself. Call before [`Runtime::run`].
    pub fn attach_tracer(&mut self, cfg: TraceConfig) {
        self.machine.attach_tracer(cfg);
        self.probe = Probe::new(lane(Component::Runtime, 0), cfg);
    }

    /// Merges the machine's trace with the scheduler lane into one
    /// canonically ordered [`Trace`].
    pub fn collect_trace(&self) -> Trace {
        let mut t = self.machine.collect_trace();
        t.push_probe(&self.probe);
        t.sort();
        t
    }

    /// The machine's [`StatsReport`] extended with a `sched` section
    /// of run-time scheduler counters.
    pub fn stats_report(&self) -> StatsReport {
        let mut report = self.machine.stats_report();
        let st = self.sched.stats;
        let mut s = Section::new("sched");
        s.counter("threads_created", st.threads_created)
            .counter("lazy_created", st.lazy_created)
            .counter("inline_evals", st.inline_evals)
            .counter("lazy_steals", st.lazy_steals)
            .counter("ready_steals", st.ready_steals)
            .counter("blocks", st.blocks)
            .counter("wakes", st.wakes)
            .counter("loads", st.loads)
            .counter("unloads", st.unloads);
        report.push(s);
        report
    }

    /// Scheduler statistics so far.
    pub fn sched_stats(&self) -> SchedStats {
        self.sched.stats
    }

    /// Initializes memory (singletons, heap registers) and loads the
    /// root thread at the program entry on node 0.
    pub fn boot(&mut self) {
        assert!(!self.booted, "boot called twice");
        self.booted = true;
        init_singletons(self.machine.mem_mut());
        for i in 0..self.machine.num_procs() {
            let (g5, g6) = self.layouts[i].heap_chunk();
            let cpu = self.machine.cpu_mut(i);
            cpu.set_reg(abi::REG_HEAP, Word(g5));
            cpu.set_reg(abi::REG_HEAP_LIM, Word(g6));
        }
        let entry = self.machine.program().entry;
        let root = self.new_thread(entry, 0);
        self.load_thread(0, 0, root);
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] on deadlock, cycle-limit exhaustion, or a
    /// simulated program fault.
    pub fn run(&mut self) -> Result<RunResult, RunError> {
        match self.run_until(u64::MAX)? {
            Some(r) => Ok(r),
            // `max_cycles` always fires before the clock reaches
            // `u64::MAX`, so a `None` here is unreachable.
            None => Err(RunError::CycleLimit(self.cfg.max_cycles)),
        }
    }

    /// Runs until the program completes *or* the machine clock reaches
    /// `stop_at`, whichever happens first. `Ok(None)` means the clock
    /// got there with the program still in flight — the natural moment
    /// to take a [`Runtime::checkpoint`]. Because the advance sequence
    /// is deterministic, stopping and resuming (or stopping,
    /// checkpointing, and restoring elsewhere) does not change the
    /// run's subsequent behavior.
    ///
    /// # Errors
    ///
    /// As [`Runtime::run`].
    pub fn run_until(&mut self, stop_at: u64) -> Result<Option<RunResult>, RunError> {
        if !self.booted {
            self.boot();
        }
        let mut last_progress = (0u64, 0u64); // (cycle, instructions)
                                              // Threshold, not a mask test: the event-driven machine can jump
                                              // the clock several cycles per advance, and `now & 0xfff == 0`
                                              // would land only by luck. Crossing the threshold triggers the
                                              // same check lockstep runs at each 4096-cycle boundary.
        let mut next_liveness = 4096u64;
        // One event buffer for the whole run so the advance loop
        // allocates nothing in the steady state.
        let mut evs = Vec::new();
        loop {
            if self.machine.now() >= stop_at {
                return Ok(None);
            }
            if self.machine.now() > self.cfg.max_cycles {
                return Err(RunError::CycleLimit(self.cfg.max_cycles));
            }
            self.machine.advance_into(&mut evs);
            for (node, ev) in evs.drain(..) {
                self.handle(node, ev)?;
            }
            if let Some(fault) = self.machine.fault() {
                return Err(RunError::MachineFault(Box::new(fault.clone())));
            }
            if let Some(value) = self.result {
                let per_cpu: Vec<CpuStats> = (0..self.machine.num_procs())
                    .map(|i| self.machine.cpu(i).stats)
                    .collect();
                let mut total = CpuStats::default();
                for s in &per_cpu {
                    total.merge(s);
                }
                return Ok(Some(RunResult {
                    value,
                    cycles: self.machine.now(),
                    total,
                    per_cpu,
                    sched: self.sched.stats,
                    prints: std::mem::take(&mut self.prints),
                }));
            }
            // Liveness check every ~4096 cycles.
            if self.machine.now() >= next_liveness {
                next_liveness = (self.machine.now() / 4096 + 1) * 4096;
                let instrs: u64 = (0..self.machine.num_procs())
                    .map(|i| self.machine.cpu(i).stats.instructions)
                    .sum();
                if instrs == last_progress.1 && self.machine.now() - last_progress.0 > 200_000 {
                    let blocked = self
                        .threads
                        .iter()
                        .filter(|t| matches!(t.state, ThreadState::Blocked { .. }))
                        .count();
                    return Err(RunError::Deadlock {
                        at: self.machine.now(),
                        blocked,
                        ready: self.sched.total_ready(),
                    });
                }
                if instrs != last_progress.1 {
                    last_progress = (self.machine.now(), instrs);
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Event dispatch
    // -----------------------------------------------------------------

    fn handle(&mut self, node: usize, ev: StepEvent) -> Result<(), RunError> {
        match ev {
            StepEvent::Executed | StepEvent::Stalled { .. } | StepEvent::Halted => Ok(()),
            StepEvent::NoReadyFrame => {
                self.schedule(node);
                Ok(())
            }
            StepEvent::RtCall { n } => self.service(node, n),
            StepEvent::Trapped(t) => self.trap(node, t),
        }
    }

    fn trap(&mut self, node: usize, t: Trap) -> Result<(), RunError> {
        match t {
            Trap::RemoteMiss { .. } => {
                // Switch-spin while the controller services the request
                // (Section 6.1's context-switch trap routine).
                let fp = self.machine.cpu(node).fp();
                let f = self.machine.cpu_mut(node).frame_mut(fp);
                f.state = FrameState::WaitingRemote;
                f.psr.in_trap = false;
                self.switch_spin(node);
                Ok(())
            }
            Trap::FullEmpty { addr, is_store } => {
                let fp = self.machine.cpu(node).fp();
                self.machine.cpu_mut(node).frame_mut(fp).psr.in_trap = false;
                match self.cfg.fe_policy {
                    FePolicy::Spin => self.machine.charge_handler(node, 2),
                    FePolicy::SwitchSpin => self.switch_spin(node),
                    FePolicy::BlockAfterSpins(k) => {
                        let entry = self.fe_spins.entry((node, fp)).or_insert((addr, 0));
                        if entry.0 != addr {
                            *entry = (addr, 0);
                        }
                        entry.1 += 1;
                        if entry.1 < k {
                            self.switch_spin(node);
                        } else {
                            // Unload until the word changes state; the
                            // scheduler polls fe_waiters when idle.
                            self.fe_spins.remove(&(node, fp));
                            let tid = self.loaded[node][fp].expect("trap from loaded frame");
                            self.unload_thread(node, fp, ThreadState::Ready);
                            self.threads[tid.0 as usize].state =
                                ThreadState::Blocked { future: addr };
                            self.fe_waiters.push((tid, addr, is_store));
                            self.sched.stats.blocks += 1;
                            let now = self.machine.now();
                            self.probe
                                .emit(now, EventKind::ThreadBlock, tid.0 as u64, addr as u64);
                            self.fill_frame(node, fp);
                        }
                        self.machine.charge_handler(node, 4);
                    }
                }
                Ok(())
            }
            Trap::FutureTouch { reg } | Trap::FutureAddr { reg } => {
                self.touch(node, reg);
                Ok(())
            }
            Trap::Interrupt { .. } => {
                // IPIs are scheduling pokes; acknowledge and return.
                let fp = self.machine.cpu(node).fp();
                self.machine.cpu_mut(node).frame_mut(fp).psr.in_trap = false;
                self.machine.charge_handler(node, 10);
                Ok(())
            }
            Trap::Alignment { .. } | Trap::DivZero => Err(RunError::Fault {
                what: t.to_string(),
                node,
                pc: self.machine.cpu(node).active_frame().pc,
            }),
            Trap::RtCall { n } => self.service(node, n),
        }
    }

    /// The context-switch trap handler: rotate to the next ready frame
    /// (6 cycles on top of the 5-cycle trap entry; Section 6.1).
    fn switch_spin(&mut self, node: usize) {
        self.machine
            .charge_handler(node, self.cfg.switch_handler_cycles);
        let cpu = self.machine.cpu_mut(node);
        cpu.count_context_switch();
        if let Some(next) = cpu.next_ready_frame() {
            cpu.set_fp(next);
        }
    }

    // -----------------------------------------------------------------
    // Futures
    // -----------------------------------------------------------------

    /// Follows a future chain; `Err(addr)` is the first unresolved
    /// future record.
    fn chase(&self, mut w: Word) -> Result<Word, u32> {
        for _ in 0..64 {
            if !w.is_future() {
                return Ok(w);
            }
            let a = w.ptr_addr().expect("future is a pointer");
            if !self.machine.mem().fe(a) {
                return Err(a);
            }
            w = self.machine.mem().read(a);
        }
        panic!("future chain too deep (cyclic determine?)");
    }

    /// The future-touch trap handler (Section 6.2).
    fn touch(&mut self, node: usize, reg: Reg) {
        let w = self.machine.cpu(node).get_reg(reg);
        debug_assert!(w.is_future(), "future trap on non-future {w}");
        match self.chase(w) {
            Ok(value) => {
                // Resolved: substitute the value and retry (23 cycles).
                let fp = self.machine.cpu(node).fp();
                let cpu = self.machine.cpu_mut(node);
                cpu.set_reg(reg, value);
                cpu.frame_mut(fp).psr.in_trap = false;
                self.machine
                    .charge_handler(node, self.cfg.touch_resolved_cycles);
            }
            Err(addr) => self.unresolved_touch(node, addr),
        }
    }

    /// An unresolved future was touched: inline its lazy thunk if we
    /// can claim it, otherwise block or switch-spin per policy. The PC
    /// chain still addresses the touching instruction, so whatever we
    /// do, the instruction retries later.
    fn unresolved_touch(&mut self, node: usize, addr: u32) {
        // Lazy inline path: claim the thunk and evaluate it in this
        // thread, like the procedure call lazy task creation replaces.
        if let Some(LazyThunk { closure, owner }) = self.futures.take_lazy(addr) {
            let claimed = self.sched.remove_lazy(owner, addr);
            debug_assert!(claimed, "thunk in table but not in queue");
            self.sched.stats.inline_evals += 1;
            self.inline_eval(node, addr, closure);
            return;
        }
        match self.cfg.touch_policy {
            TouchPolicy::SwitchSpin => {
                let fp = self.machine.cpu(node).fp();
                self.machine.cpu_mut(node).frame_mut(fp).psr.in_trap = false;
                self.switch_spin(node);
            }
            TouchPolicy::Block => {
                let fp = self.machine.cpu(node).fp();
                let tid = self.loaded[node][fp].expect("trap from a loaded frame");
                self.unload_thread(node, fp, ThreadState::Blocked { future: addr });
                self.futures.add_waiter(addr, tid);
                self.sched.stats.blocks += 1;
                let now = self.machine.now();
                self.probe
                    .emit(now, EventKind::ThreadBlock, tid.0 as u64, addr as u64);
                self.fill_frame(node, fp);
            }
        }
    }

    /// Redirects the current thread into an inline thunk evaluation:
    /// push the interrupted frame on the thread's shadow stack, call
    /// the thunk, and let `RT_RESUME` restore and retry.
    fn inline_eval(&mut self, node: usize, fut_addr: u32, closure: Word) {
        let inline_entry = self
            .inline_entry
            .expect("program lacks __inline_entry but uses lazy futures");
        let fp = self.machine.cpu(node).fp();
        let tid = self.loaded[node][fp].expect("loaded frame");
        {
            let f = self.machine.cpu(node).frame(fp);
            let saved = SavedFrame {
                regs: f.regs,
                fregs: f.fregs,
                pc: f.pc,
                npc: f.npc,
                psr: f.psr,
            };
            self.threads[tid.0 as usize].shadow.push(saved);
        }
        let cpu = self.machine.cpu_mut(node);
        let f = cpu.frame_mut(fp);
        f.psr.in_trap = false;
        f.pc = inline_entry;
        f.npc = inline_entry + 1;
        cpu.set_reg(abi::REG_CLOSURE, closure);
        cpu.set_reg(abi::REG_FUT, Word::future_ptr(fut_addr));
        // Near procedure-call cost: lazy task creation replaces thread
        // creation with (almost) a call (Section 3.2).
        self.machine
            .charge_handler(node, self.cfg.lazy_inline_cycles);
    }

    /// Resolves `addr` with `value`, waking waiters onto their home
    /// ready queues.
    fn determine(&mut self, node: usize, addr: u32, value: Word) {
        let mem = self.machine.mem_mut();
        mem.write(addr, value);
        mem.set_fe(addr, true);
        let waiters = self.futures.resolve(addr);
        // A determine nobody waits on (the common lazy-inline case) is
        // a store plus a full/empty-bit set; waking waiters costs the
        // scheduler work.
        let cost = if waiters.is_empty() {
            6
        } else {
            self.cfg.determine_cycles + 4 * waiters.len() as u64
        };
        let now = self.machine.now();
        for tid in waiters {
            let t = &mut self.threads[tid.0 as usize];
            debug_assert!(matches!(t.state, ThreadState::Blocked { .. }));
            t.state = ThreadState::Ready;
            let home = t.home;
            self.sched.enqueue_ready(home, tid);
            self.sched.stats.wakes += 1;
            self.probe
                .emit(now, EventKind::ThreadResume, tid.0 as u64, addr as u64);
        }
        self.machine.charge_handler(node, cost);
    }

    // -----------------------------------------------------------------
    // Threads and frames
    // -----------------------------------------------------------------

    fn new_thread(&mut self, pc: u32, home: usize) -> ThreadId {
        let id = ThreadId(self.threads.len() as u32);
        self.threads.push(Thread::fresh(id, pc, home));
        id
    }

    /// Spawns a task thread for `closure` determining `future`.
    fn spawn_task(&mut self, closure: Word, future: u32, target: usize) -> ThreadId {
        let id = self.new_thread(self.task_entry, target);
        let t = &mut self.threads[id.0 as usize];
        t.regs[0] = closure; // REG_CLOSURE
        t.regs[25] = Word::future_ptr(future); // REG_FUT
        self.sched.enqueue_ready(target, id);
        self.sched.stats.threads_created += 1;
        let now = self.machine.now();
        self.probe
            .emit(now, EventKind::ThreadSpawn, id.0 as u64, target as u64);
        id
    }

    fn load_thread(&mut self, node: usize, frame: usize, tid: ThreadId) {
        let fresh = !self.threads[tid.0 as usize].started;
        if fresh {
            let stack = self.layouts[node].take_stack();
            let t = &mut self.threads[tid.0 as usize];
            t.stack_base = stack;
            t.regs[29] = Word(stack); // REG_SP
            t.started = true;
        }
        let t = &mut self.threads[tid.0 as usize];
        t.state = ThreadState::Loaded { node, frame };
        t.home = node;
        let (regs, fregs, pc, npc, psr) = (t.regs, t.fregs, t.pc, t.npc, t.psr);
        let cpu = self.machine.cpu_mut(node);
        let f = cpu.frame_mut(frame);
        f.regs = regs;
        f.fregs = fregs;
        f.pc = pc;
        f.npc = npc;
        f.psr = psr;
        f.psr.in_trap = false;
        f.state = FrameState::Ready;
        self.loaded[node][frame] = Some(tid);
        self.fe_spins.remove(&(node, frame));
        self.sched.stats.loads += 1;
        let cost = if fresh {
            self.cfg.fresh_load_cycles
        } else {
            self.cfg.thread_load_cycles
        };
        self.machine.charge_handler(node, cost);
    }

    fn unload_thread(&mut self, node: usize, frame: usize, into: ThreadState) {
        let tid = self.loaded[node][frame]
            .take()
            .expect("unload of empty frame");
        let f = self.machine.cpu(node).frame(frame);
        let (regs, fregs, pc, npc, mut psr) = (f.regs, f.fregs, f.pc, f.npc, f.psr);
        psr.in_trap = false;
        let t = &mut self.threads[tid.0 as usize];
        t.regs = regs;
        t.fregs = fregs;
        t.pc = pc;
        t.npc = npc;
        t.psr = psr;
        t.state = into;
        self.machine.cpu_mut(node).frame_mut(frame).state = FrameState::Empty;
        self.sched.stats.unloads += 1;
        self.machine
            .charge_handler(node, self.cfg.thread_unload_cycles);
    }

    /// Fills `frame` on `node` with work, if any exists anywhere.
    fn fill_frame(&mut self, node: usize, frame: usize) -> bool {
        // 1. Local ready queue.
        if let Some(tid) = self.sched.dequeue_ready(node) {
            self.machine.charge_handler(node, self.cfg.dequeue_cycles);
            self.load_thread(node, frame, tid);
            return true;
        }
        // 2. Own lazy queue (oldest thunk), promoted to a thread.
        if let Some(fut) = self.sched.pop_own_lazy(node) {
            self.promote_lazy(node, frame, fut, 0);
            return true;
        }
        // 3. Steal a ready thread.
        if let Some((tid, _victim)) = self.sched.steal_ready(node) {
            self.machine.charge_handler(node, self.cfg.steal_cycles);
            self.load_thread(node, frame, tid);
            return true;
        }
        // 4. Steal a lazy thunk and promote it.
        if let Some((fut, _victim)) = self.sched.steal_lazy(node) {
            self.promote_lazy(node, frame, fut, self.cfg.steal_cycles);
            return true;
        }
        false
    }

    /// Converts a claimed lazy future into a real thread loaded into
    /// `frame` (deferred thread creation: the cost the lazy scheme
    /// avoids until parallelism is actually needed).
    fn promote_lazy(&mut self, node: usize, frame: usize, fut: u32, access_cost: u64) {
        let thunk = self
            .futures
            .take_lazy(fut)
            .expect("queued thunk has a descriptor");
        self.machine
            .charge_handler(node, access_cost + self.cfg.thread_create_cycles);
        let tid = self.new_thread(self.task_entry, node);
        let t = &mut self.threads[tid.0 as usize];
        t.regs[0] = thunk.closure;
        t.regs[25] = Word::future_ptr(fut);
        self.sched.stats.threads_created += 1;
        let now = self.machine.now();
        self.probe
            .emit(now, EventKind::ThreadSpawn, tid.0 as u64, node as u64);
        self.load_thread(node, frame, tid);
    }

    /// Re-queues threads whose awaited full/empty state has arrived
    /// (the polling half of `FePolicy::BlockAfterSpins`).
    fn poll_fe_waiters(&mut self) {
        if self.fe_waiters.is_empty() {
            return;
        }
        let mem = self.machine.mem();
        let mut woken = Vec::new();
        self.fe_waiters.retain(|&(tid, addr, wants_empty)| {
            let full = mem.fe(addr);
            let ready = if wants_empty { !full } else { full };
            if ready {
                woken.push(tid);
                false
            } else {
                true
            }
        });
        let now = self.machine.now();
        for tid in woken {
            let t = &mut self.threads[tid.0 as usize];
            t.state = ThreadState::Ready;
            let home = t.home;
            self.sched.enqueue_ready(home, tid);
            self.sched.stats.wakes += 1;
            self.probe
                .emit(now, EventKind::ThreadResume, tid.0 as u64, home as u64);
        }
    }

    /// The idle-processor scheduler: called when the active frame is
    /// not runnable.
    fn schedule(&mut self, node: usize) {
        self.poll_fe_waiters();
        let cpu = self.machine.cpu(node);
        // A frame woken by the controller? Resume it (the switch cost
        // was charged when we switched away).
        if let Some(next) = cpu.next_ready_frame() {
            self.machine.cpu_mut(node).set_fp(next);
            return;
        }
        // An empty frame to fill?
        if let Some(frame) = (0..cpu.nframes()).find(|&i| cpu.frame(i).state == FrameState::Empty) {
            // Local lazy work first (cheapest locality), then the
            // generic fill path.
            if let Some(fut) = self.sched.pop_own_lazy(node) {
                self.promote_lazy(node, frame, fut, 0);
                self.machine.cpu_mut(node).set_fp(frame);
                return;
            }
            if self.fill_frame(node, frame) {
                self.machine.cpu_mut(node).set_fp(frame);
                return;
            }
        }
        self.machine.charge_idle(node, 1);
    }

    // -----------------------------------------------------------------
    // Run-time services (RTCALL)
    // -----------------------------------------------------------------

    fn service(&mut self, node: usize, n: u16) -> Result<(), RunError> {
        match n {
            abi::RT_EXIT => self.svc_exit(node),
            abi::RT_MAIN_DONE => {
                let value = self.machine.cpu(node).get_reg(abi::REG_RET);
                self.result = Some(value);
                for i in 0..self.machine.num_procs() {
                    self.machine.cpu_mut(i).halt();
                }
            }
            abi::RT_FUTURE => {
                let target = self.sched.next_spawn_node();
                self.svc_future(node, target, self.cfg.thread_create_cycles);
            }
            abi::RT_FUTURE_ON => {
                let t = self
                    .machine
                    .cpu(node)
                    .get_reg(Reg::L(2))
                    .as_fixnum()
                    .unwrap_or(0);
                let target = (t.max(0) as usize) % self.machine.num_procs();
                self.svc_future(node, target, self.cfg.thread_create_cycles);
            }
            abi::RT_FUTURE_SW => {
                let target = self.sched.next_spawn_node();
                let cost = self.cfg.thread_create_cycles + self.cfg.sw_create_extra_cycles;
                self.svc_future(node, target, cost);
            }
            abi::RT_LAZY_FUTURE => {
                let closure = self.machine.cpu(node).get_reg(abi::REG_RET);
                let fut = self.alloc_future(node);
                self.futures.set_lazy(
                    fut,
                    LazyThunk {
                        closure,
                        owner: node,
                    },
                );
                self.sched.push_lazy(node, fut);
                self.sched.stats.lazy_created += 1;
                let now = self.machine.now();
                self.probe
                    .emit(now, EventKind::LazyTask, fut as u64, node as u64);
                self.machine
                    .cpu_mut(node)
                    .set_reg(abi::REG_RET, Word::future_ptr(fut));
                self.machine
                    .charge_handler(node, self.cfg.lazy_create_cycles);
            }
            abi::RT_DETERMINE => {
                let fut = self.machine.cpu(node).get_reg(abi::REG_FUT);
                let value = self.machine.cpu(node).get_reg(abi::REG_RET);
                let addr = fut.ptr_addr().expect("determine of non-pointer");
                self.determine(node, addr, value);
            }
            abi::RT_RESUME => {
                let fp = self.machine.cpu(node).fp();
                let tid = self.loaded[node][fp].expect("resume from loaded frame");
                let saved = self.threads[tid.0 as usize]
                    .shadow
                    .pop()
                    .expect("resume without inline evaluation");
                let f = self.machine.cpu_mut(node).frame_mut(fp);
                f.regs = saved.regs;
                f.fregs = saved.fregs;
                f.pc = saved.pc;
                f.npc = saved.npc;
                f.psr = saved.psr;
                // Like a procedure return: lazy task creation's inline
                // path costs (almost) a call (Section 3.2).
                self.machine.charge_handler(node, 3);
            }
            abi::RT_TOUCH_SW => self.svc_touch_sw(node),
            abi::RT_HEAP_MORE => {
                let (g5, g6) = self.layouts[node].heap_chunk();
                let cpu = self.machine.cpu_mut(node);
                cpu.set_reg(abi::REG_HEAP, Word(g5));
                cpu.set_reg(abi::REG_HEAP_LIM, Word(g6));
                self.machine.charge_handler(node, 20);
            }
            abi::RT_PRINT => {
                let v = self.machine.cpu(node).get_reg(abi::REG_RET);
                self.prints.push(v);
                self.machine.charge_handler(node, 1);
            }
            abi::RT_YIELD => {
                self.switch_spin(node);
            }
            abi::RT_RETIRE => {
                // Open-loop request retirement (DESIGN.md §15): hand
                // the request word back to the machine, which records
                // birth→retire latency against its arrival plan.
                let w = self.machine.cpu(node).get_reg(abi::REG_RET);
                self.machine.retire_request(node, w.0);
                self.machine.charge_handler(node, 1);
            }
            other => {
                return Err(RunError::Fault {
                    what: format!("unknown rtcall {other}"),
                    node,
                    pc: self.machine.cpu(node).active_frame().pc,
                })
            }
        }
        Ok(())
    }

    fn alloc_future(&mut self, node: usize) -> u32 {
        let addr = self.layouts[node].alloc(FUTURE_BYTES);
        let mem = self.machine.mem_mut();
        mem.write(addr, Word::ZERO);
        mem.set_fe(addr, false); // unresolved
        mem.write(addr + 4, Word::ZERO);
        mem.set_fe(addr + 4, true);
        self.futures.create(addr);
        addr
    }

    fn svc_future(&mut self, node: usize, target: usize, cost: u64) {
        let closure = self.machine.cpu(node).get_reg(abi::REG_RET);
        let fut = self.alloc_future(node);
        self.spawn_task(closure, fut, target);
        self.machine
            .cpu_mut(node)
            .set_reg(abi::REG_RET, Word::future_ptr(fut));
        self.machine.charge_handler(node, cost);
    }

    fn svc_exit(&mut self, node: usize) {
        let fp = self.machine.cpu(node).fp();
        let tid = self.loaded[node][fp]
            .take()
            .expect("exit from loaded frame");
        let t = &mut self.threads[tid.0 as usize];
        t.state = ThreadState::Exited;
        let stack = t.stack_base;
        if stack != 0 {
            self.layouts[node].release_stack(stack);
        }
        self.machine.cpu_mut(node).frame_mut(fp).state = FrameState::Empty;
        self.machine.charge_handler(node, self.cfg.exit_cycles);
        self.fill_frame(node, fp);
    }

    /// Software touch for the Encore baseline: the compiled check
    /// found a future in `r24`; resolve or block. Because the RTCALL
    /// has already retired, blocking rewinds the PC chain so the call
    /// retries on wake-up.
    fn svc_touch_sw(&mut self, node: usize) {
        let w = self.machine.cpu(node).get_reg(abi::REG_SW_TOUCH);
        if !w.is_future() {
            self.machine.charge_handler(node, self.cfg.sw_touch_cycles);
            return;
        }
        match self.chase(w) {
            Ok(value) => {
                self.machine.cpu_mut(node).set_reg(abi::REG_SW_TOUCH, value);
                self.machine
                    .charge_handler(node, self.cfg.sw_touch_cycles + 8);
            }
            Err(addr) => {
                // Rewind to the rtcall instruction (it is never placed
                // in a delay slot).
                let fp = self.machine.cpu(node).fp();
                {
                    let f = self.machine.cpu_mut(node).frame_mut(fp);
                    let call_pc = f.pc - 1;
                    f.pc = call_pc;
                    f.npc = call_pc + 1;
                }
                if let Some(LazyThunk { closure, owner }) = self.futures.take_lazy(addr) {
                    let claimed = self.sched.remove_lazy(owner, addr);
                    debug_assert!(claimed);
                    self.sched.stats.inline_evals += 1;
                    self.inline_eval(node, addr, closure);
                    return;
                }
                let tid = self.loaded[node][fp].expect("loaded frame");
                self.unload_thread(node, fp, ThreadState::Blocked { future: addr });
                self.futures.add_waiter(addr, tid);
                self.sched.stats.blocks += 1;
                let now = self.machine.now();
                self.probe
                    .emit(now, EventKind::ThreadBlock, tid.0 as u64, addr as u64);
                self.fill_frame(node, fp);
            }
        }
    }
}
