//! End-to-end tests of the run-time system on hand-written APRIL
//! assembly (the Mul-T compiler is tested separately in `april-mult`).

use april_core::isa::asm::assemble;
use april_core::program::Program;
use april_machine::IdealMachine;
use april_runtime::abi;
use april_runtime::{RtConfig, RunError, Runtime};

const MEM: usize = 4 << 20;
const REGION: u32 = 1 << 20;

fn cfg() -> RtConfig {
    RtConfig {
        region_bytes: REGION,
        stack_bytes: 4096,
        max_cycles: 10_000_000,
        ..RtConfig::default()
    }
}

/// Assembles a program with the runtime entry stubs appended.
fn program(body: &str) -> Program {
    let src = format!("{}\n{}", body, abi::entry_stubs_asm());
    assemble(&src).unwrap_or_else(|e| panic!("asm error: {e}"))
}

fn run_on(nprocs: usize, body: &str) -> april_runtime::RunResult {
    let prog = program(body);
    let m = IdealMachine::new(nprocs, MEM, prog);
    let mut rt = Runtime::new(m, cfg());
    rt.run().unwrap_or_else(|e| panic!("run failed: {e}"))
}

#[test]
fn main_done_returns_value() {
    let r = run_on(
        1,
        "
        .entry main
        main:
            movi 164, r1       ; fixnum 41
            add r1, 4, r1      ; fixnum 42
            rtcall 1           ; RT_MAIN_DONE
    ",
    );
    assert_eq!(r.value.as_fixnum(), Some(42));
    assert!(r.cycles > 0);
    assert!(r.total.instructions >= 3);
}

/// Builds a closure for `@label` inline (8 bytes from the heap) and
/// leaves the tagged pointer in r1.
fn make_closure(label: &str) -> String {
    format!(
        "
            or g5, 0, g1
            add g5, 8, g5
            movi @{label}, g2
            st g2, g1+0
            or g1, 2, r1       ; other-tag the closure
        "
    )
}

#[test]
fn eager_future_spawns_touches_and_joins() {
    let body = format!(
        "
        .entry main
        main:
            {mk}
            rtcall 2           ; RT_FUTURE -> r1 = future
            tadd r1, 0, r1     ; strict touch (traps, blocks, resumes)
            rtcall 1           ; RT_MAIN_DONE
        the_answer:
            movi 168, r1       ; fixnum 42
            jmpl r31+0, g0
            nop
        ",
        mk = make_closure("the_answer")
    );
    let r = run_on(1, &body);
    assert_eq!(r.value.as_fixnum(), Some(42));
    assert_eq!(r.sched.threads_created, 1);
    assert_eq!(r.sched.blocks, 1, "main blocked on the future");
    assert_eq!(r.sched.wakes, 1);
    assert!(r.total.future_traps >= 1, "hardware touch trap fired");
}

#[test]
fn touch_of_resolved_future_costs_23_cycles() {
    // Main spawns, then busy-waits long enough for the task to finish
    // on the second processor, so the touch finds it resolved.
    let body = format!(
        "
        .entry main
        main:
            {mk}
            rtcall 2
            movi 2000, r5
        spinwait:
            sub r5, 1, r5
            jne spinwait
            nop
            tadd r1, 0, r1
            rtcall 1
        the_answer:
            movi 168, r1
            jmpl r31+0, g0
            nop
        ",
        mk = make_closure("the_answer")
    );
    let prog = program(&body);
    let m = IdealMachine::new(2, MEM, prog);
    let mut rt = Runtime::new(m, cfg());
    let r = rt.run().unwrap();
    assert_eq!(r.value.as_fixnum(), Some(42));
    assert_eq!(
        r.sched.blocks, 0,
        "no blocking: future resolved before the touch"
    );
    // Handler cycles on cpu 0 include exactly one 23-cycle resolved
    // touch (plus spawn/exit bookkeeping).
    assert!(r.per_cpu[0].future_traps >= 1);
}

#[test]
fn lazy_future_inlines_when_untouched_by_thieves() {
    let body = format!(
        "
        .entry main
        main:
            {mk}
            rtcall 4           ; RT_LAZY_FUTURE
            tadd r1, 0, r1     ; touch -> inline evaluation
            rtcall 1
        the_answer:
            movi 168, r1
            jmpl r31+0, g0
            nop
        ",
        mk = make_closure("the_answer")
    );
    let r = run_on(1, &body);
    assert_eq!(r.value.as_fixnum(), Some(42));
    assert_eq!(r.sched.lazy_created, 1);
    assert_eq!(r.sched.inline_evals, 1, "creator claimed its own thunk");
    assert_eq!(r.sched.threads_created, 0, "no thread was ever created");
    assert_eq!(r.sched.blocks, 0);
}

#[test]
fn lazy_future_stolen_by_idle_processor() {
    // Main creates a lazy future then spins long enough for the other
    // processor to steal it, then touches the (resolved) future.
    let body = format!(
        "
        .entry main
        main:
            {mk}
            rtcall 4           ; RT_LAZY_FUTURE
            movi 4000, r5
        spinwait:
            sub r5, 1, r5
            jne spinwait
            nop
            tadd r1, 0, r1
            rtcall 1
        the_answer:
            movi 168, r1
            jmpl r31+0, g0
            nop
        ",
        mk = make_closure("the_answer")
    );
    let prog = program(&body);
    let m = IdealMachine::new(2, MEM, prog);
    let mut rt = Runtime::new(m, cfg());
    let r = rt.run().unwrap();
    assert_eq!(r.value.as_fixnum(), Some(42));
    assert_eq!(r.sched.lazy_steals, 1, "idle processor stole the thunk");
    assert_eq!(r.sched.inline_evals, 0);
    assert_eq!(
        r.sched.threads_created, 1,
        "thread creation deferred to steal time"
    );
}

#[test]
fn several_futures_parallelize_across_processors() {
    // Spawn 8 tasks, each returning 5; sum via touches.
    let body = format!(
        "
        .entry main
        main:
            movi 0, r10        ; sum
            movi 8, r11        ; count
            movi 0x200, r12    ; future array base (node 0 reserved page)
        spawn:
            {mk}
            rtcall 2
            st r1, r12+0
            add r12, 4, r12
            sub r11, 1, r11
            jne spawn
            nop
            movi 8, r11
            movi 0x200, r12
        join:
            ld r12+0, r13
            tadd r10, r13, r10 ; strict add: touches the future
            add r12, 4, r12
            sub r11, 1, r11
            jne join
            nop
            or r10, 0, r1
            rtcall 1
        five:
            movi 20, r1        ; fixnum 5
            jmpl r31+0, g0
            nop
        ",
        mk = make_closure("five")
    );
    let prog = program(&body);
    let m = IdealMachine::new(4, MEM, prog);
    let mut rt = Runtime::new(m, cfg());
    let r = rt.run().unwrap();
    assert_eq!(r.value.as_fixnum(), Some(40));
    assert_eq!(r.sched.threads_created, 8);
    // Work spread: at least two processors retired task instructions.
    let busy = r.per_cpu.iter().filter(|s| s.instructions > 10).count();
    assert!(busy >= 2, "only {busy} processors did work");
}

#[test]
fn undetermined_future_deadlocks_cleanly() {
    let body = format!(
        "
        .entry main
        main:
            {mk}
            rtcall 2
            movi 0, r2
            or g0, 0, g0       ; provoke spawn first
            tadd r1, 0, r1
            rtcall 1
        never:
            ; task that never determines: just exits the hard way by
            ; spinning until the fuse blows would stall the test, so
            ; instead it returns -- but we touch a *different* future.
            movi 0, r1
            jmpl r31+0, g0
            nop
        ",
        mk = make_closure("never")
    );
    // Touch a future that nobody determines: hand-craft one by calling
    // RT_LAZY_FUTURE on proc 1's behalf is intricate in asm; instead
    // test the detector with a self-touching chain: create a lazy
    // future whose thunk touches the future itself.
    let _ = body;
    let recursive = format!(
        "
        .entry main
        main:
            {mk}
            rtcall 2           ; eager task: touches its own future
            or r1, 0, r20      ; stash
            tadd r1, 0, r1     ; main also waits on it
            rtcall 1
        selfwait:
            tadd r25, 0, r1    ; touch own (unresolved) future: blocks forever
            jmpl r31+0, g0
            nop
        ",
        mk = make_closure("selfwait")
    );
    let prog = program(&recursive);
    let m = IdealMachine::new(1, MEM, prog);
    let mut rt = Runtime::new(
        m,
        RtConfig {
            max_cycles: 5_000_000,
            ..cfg()
        },
    );
    match rt.run() {
        Err(RunError::Deadlock { blocked, .. }) => assert!(blocked >= 2),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn print_service_collects_values() {
    let r = run_on(
        1,
        "
        .entry main
        main:
            movi 4, r1
            rtcall 10
            movi 8, r1
            rtcall 10
            rtcall 1
    ",
    );
    assert_eq!(r.prints.len(), 2);
    assert_eq!(r.prints[0].as_fixnum(), Some(1));
    assert_eq!(r.prints[1].as_fixnum(), Some(2));
}

#[test]
fn heap_refill_service() {
    // Exhaust g5..g6 artificially by bumping close to the limit, then
    // rtcall RT_HEAP_MORE and allocate again.
    let r = run_on(
        1,
        "
        .entry main
        main:
            or g6, 0, g5       ; pretend the chunk is full
            rtcall 9           ; RT_HEAP_MORE
            sub g6, g5, r1     ; fresh chunk is non-empty
            rtcall 1
    ",
    );
    assert!(r.value.0 > 0);
}

#[test]
fn fe_producer_consumer_across_processors() {
    // Main (proc 0) waits on an empty word with a trapping load while
    // a spawned task (running on proc 1) fills it.
    let body = format!(
        "
        .entry main
        .static 0x400
        .word 0 empty          ; the mailbox at 0x400
        main:
            {mk}
            rtcall 2           ; producer task
            movi 0x400, r3
        wait:
            ldtw r3+0, r4      ; trap while empty (switch-spin policy)
            or r4, 0, r1
            rtcall 1
        producer:
            movi 300, r5       ; delay so the consumer traps first
        delay:
            sub r5, 1, r5
            jne delay
            nop
            movi 0x400, r3
            movi 28, r4        ; fixnum 7
            stfnt r4, r3+0     ; store and set full
            movi 28, r1
            jmpl r31+0, g0
            nop
        ",
        mk = make_closure("producer")
    );
    let prog = program(&body);
    let m = IdealMachine::new(2, MEM, prog);
    let mut rt = Runtime::new(m, cfg());
    let r = rt.run().unwrap();
    assert_eq!(r.value.as_fixnum(), Some(7));
    assert!(
        r.total.fe_traps >= 1,
        "consumer trapped at least once on the empty word"
    );
}

#[test]
fn results_are_deterministic() {
    let body = "
        .entry main
        main:
            movi 12, r1
            rtcall 1
    ";
    let a = run_on(2, body);
    let b = run_on(2, body);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.total, b.total);
}

#[test]
fn block_after_spins_unloads_and_wakes_on_state_change() {
    use april_runtime::FePolicy;
    // Consumer traps on an empty mailbox; with BlockAfterSpins(3) it
    // switch-spins twice, then unloads, freeing the frame. A slow
    // producer eventually fills the word and the consumer is re-queued
    // by the scheduler's polling wakeup (the Section 3.1 mechanism).
    let body = format!(
        "
        .entry main
        .static 0x400
        .word 0 empty
        main:
            {mk}
            rtcall 2
            movi 0x400, r3
        wait:
            ldtw r3+0, r4
            or r4, 0, r1
            rtcall 1
        producer:
            movi 2000, r5
        delay:
            sub r5, 1, r5
            jne delay
            nop
            movi 0x400, r3
            movi 28, r4
            stfnt r4, r3+0
            movi 28, r1
            jmpl r31+0, g0
            nop
        ",
        mk = make_closure("producer")
    );
    let prog = program(&body);
    let m = IdealMachine::new(2, MEM, prog);
    let mut rt = Runtime::new(
        m,
        RtConfig {
            fe_policy: FePolicy::BlockAfterSpins(3),
            ..cfg()
        },
    );
    let r = rt.run().unwrap();
    assert_eq!(r.value.as_fixnum(), Some(7));
    assert!(r.sched.blocks >= 1, "consumer must have unloaded");
    assert!(r.sched.wakes >= 1, "consumer must have been re-queued");
    // Bounded spinning: far fewer fe traps than the pure switch-spin
    // policy would burn over a 2000-cycle wait.
    assert!(r.total.fe_traps <= 6, "spun {} times", r.total.fe_traps);
}

#[test]
fn spin_policy_retries_in_place() {
    use april_runtime::FePolicy;
    let body = format!(
        "
        .entry main
        .static 0x400
        .word 0 empty
        main:
            {mk}
            rtcall 2
            movi 0x400, r3
        wait:
            ldtw r3+0, r4
            or r4, 0, r1
            rtcall 1
        producer:
            movi 300, r5
        delay:
            sub r5, 1, r5
            jne delay
            nop
            movi 0x400, r3
            movi 28, r4
            stfnt r4, r3+0
            movi 28, r1
            jmpl r31+0, g0
            nop
        ",
        mk = make_closure("producer")
    );
    let prog = program(&body);
    let m = IdealMachine::new(2, MEM, prog);
    let mut rt = Runtime::new(
        m,
        RtConfig {
            fe_policy: FePolicy::Spin,
            ..cfg()
        },
    );
    let r = rt.run().unwrap();
    assert_eq!(r.value.as_fixnum(), Some(7));
    assert!(r.total.fe_traps > 10, "pure spinning retries constantly");
    assert_eq!(r.total.context_switches, 0, "spinning never switches");
}

#[test]
fn rt_retire_records_open_loop_latency() {
    // The run-time path of DESIGN.md §15: instead of the machine-level
    // `stio` retire, a service thread hands each request word back
    // through `rtcall 12` (RT_RETIRE) and the machine times it against
    // its arrival plan. Here main itself serves node 0's ingress ring:
    // poll, retire, consume, until the poison word arrives.
    use april_machine::{Alewife, Machine, MachineConfig, Topology, TrafficConfig};

    let traffic = TrafficConfig {
        seed: 0xcafe,
        edge_every: 4, // only node 0 of the 2x2 mesh is an edge
        requests_per_edge: 12,
        mean_gap: 60,
        phase_len: 0,
        off_mul: 1,
        ring_offset: 0x8000, // clear of the runtime's low-memory layout
        ring_slots: 4,
        work_remote: 0,
        work_local: 0,
    };
    let body = "
        .entry main
        main:
            movi 0x8000, r9    ; ring base (node 0's region starts at 0)
            movi 0, r8         ; slot offset within the ring
        poll:
            add r9, r8, r7
            ld r7+0, r3
            sub r3, 1, r4      ; cc: empty < 0, poison = 0, request > 0
            jlt poll
            nop
            jeq done
            nop
            or r3, 0, r1
            rtcall 12          ; RT_RETIRE
            movi 0, r4
            st r4, r7+0        ; consume the slot
            add r8, 4, r8
            movi 16, r5        ; ring_slots * 4
            rem r8, r5, r8
            jmp poll
            nop
        done:
            movi 168, r1       ; fixnum 42
            rtcall 1           ; RT_MAIN_DONE
    ";
    let prog = program(body);
    let m = Alewife::new(
        MachineConfig {
            topology: Topology::new(2, 2),
            region_bytes: REGION,
            traffic: Some(traffic),
            ..MachineConfig::default()
        },
        prog,
    );
    let mut rt = Runtime::new(m, cfg());
    let r = rt.run().unwrap_or_else(|e| panic!("run failed: {e}"));
    assert_eq!(r.value.as_fixnum(), Some(42));

    let report = rt.machine().stats_report();
    let s = report.section("traffic").expect("traffic section present");
    let injected = s.get_counter("injected").unwrap();
    let dropped = s.get_counter("dropped").unwrap();
    let retired = s.get_counter("retired").unwrap();
    assert_eq!(injected + dropped, 12, "arrival accounting");
    assert_eq!(retired, injected, "every injected request was retired");
    assert!(retired > 0, "no requests retired through RT_RETIRE");
    let hist = s.get_qhist("latency").expect("latency histogram present");
    assert_eq!(hist.count(), retired, "one latency sample per retire");
    assert!(hist.quantile(0.999) > 0, "latencies must be positive");
}
