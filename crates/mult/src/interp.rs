//! A reference interpreter for Mul-T.
//!
//! Direct-style evaluation of the AST with sequential future semantics
//! (a `future` evaluates its body in place, exactly the deterministic
//! value every parallel schedule must produce). The compiler and
//! run-time system are differentially tested against this oracle in
//! `tests/differential.rs`.

use crate::ast::{Definition, Expr, Prim, ProgramAst};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// A Mul-T value.
#[derive(Debug, Clone)]
pub enum Value {
    /// Fixnum.
    Int(i32),
    /// Boolean.
    Bool(bool),
    /// The empty list.
    Nil,
    /// A pair.
    Pair(Rc<(Value, Value)>),
    /// A vector.
    Vector(Rc<RefCell<Vec<Value>>>),
    /// A closure: parameters, body, captured environment.
    Closure(Rc<ClosureVal>),
}

/// A closure value.
#[derive(Debug)]
pub struct ClosureVal {
    /// Parameter names.
    pub params: Vec<String>,
    /// Body expressions.
    pub body: Vec<Expr>,
    /// Captured environment.
    pub env: Env,
}

type Env = Rc<EnvNode>;

/// A linked environment frame.
#[derive(Debug)]
pub enum EnvNode {
    /// The empty environment.
    Empty,
    /// One binding on top of a parent environment.
    Bind(String, RefCell<Value>, Env),
}

fn lookup(env: &Env, name: &str) -> Option<Value> {
    let mut cur = env;
    loop {
        match &**cur {
            EnvNode::Empty => return None,
            EnvNode::Bind(n, v, parent) => {
                if n == name {
                    return Some(v.borrow().clone());
                }
                cur = parent;
            }
        }
    }
}

fn bind(env: &Env, name: &str, v: Value) -> Env {
    Rc::new(EnvNode::Bind(
        name.to_string(),
        RefCell::new(v),
        env.clone(),
    ))
}

impl Value {
    /// Scheme truthiness.
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Value::Bool(false))
    }

    /// The fixnum, if this is one.
    pub fn as_int(&self) -> Option<i32> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Nil, Value::Nil) => true,
            (Value::Pair(a), Value::Pair(b)) => Rc::ptr_eq(a, b),
            (Value::Vector(a), Value::Vector(b)) => Rc::ptr_eq(a, b),
            (Value::Closure(a), Value::Closure(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "#{}", if *b { "t" } else { "f" }),
            Value::Nil => write!(f, "()"),
            Value::Pair(p) => write!(f, "({} . {})", p.0, p.1),
            Value::Vector(v) => write!(f, "#({} elems)", v.borrow().len()),
            Value::Closure(_) => write!(f, "#<procedure>"),
        }
    }
}

/// Interpreter failure (a dynamic type or arity error in the program).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError(pub String);

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for InterpError {}

/// The interpreter: global definitions plus collected `print` output.
pub struct Interp {
    globals: HashMap<String, Definition>,
    /// Values printed, in order.
    pub prints: Vec<Value>,
    fuel: u64,
    depth: u32,
}

impl Interp {
    /// Prepares to run `ast`.
    pub fn new(ast: &ProgramAst) -> Interp {
        Interp {
            globals: ast
                .defs
                .iter()
                .map(|d| (d.name.clone(), d.clone()))
                .collect(),
            prints: Vec::new(),
            fuel: 200_000_000,
            depth: 0,
        }
    }

    /// Runs `(main)`.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError`] on dynamic errors or fuel exhaustion.
    pub fn run(&mut self) -> Result<Value, InterpError> {
        let main = self
            .globals
            .get("main")
            .cloned()
            .ok_or_else(|| InterpError("no main".into()))?;
        self.call_def(&main, Vec::new())
    }

    fn call_def(&mut self, d: &Definition, args: Vec<Value>) -> Result<Value, InterpError> {
        if d.params.len() != args.len() {
            return Err(InterpError(format!(
                "{} expects {} args",
                d.name,
                d.params.len()
            )));
        }
        let mut env: Env = Rc::new(EnvNode::Empty);
        for (p, a) in d.params.iter().zip(args) {
            env = bind(&env, p, a);
        }
        self.eval_body(&d.body, &env)
    }

    fn eval_body(&mut self, body: &[Expr], env: &Env) -> Result<Value, InterpError> {
        if self.depth > 250 {
            return Err(InterpError("recursion too deep".into()));
        }
        self.depth += 1;
        let mut last = Value::Bool(false);
        for e in body {
            match self.eval(e, env) {
                Ok(v) => last = v,
                Err(e) => {
                    self.depth -= 1;
                    return Err(e);
                }
            }
        }
        self.depth -= 1;
        Ok(last)
    }

    fn eval(&mut self, e: &Expr, env: &Env) -> Result<Value, InterpError> {
        self.fuel = self
            .fuel
            .checked_sub(1)
            .ok_or_else(|| InterpError("interpreter fuel exhausted".into()))?;
        match e {
            Expr::Int(n) => Ok(Value::Int(*n)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Nil => Ok(Value::Nil),
            Expr::Var(name) => {
                if let Some(v) = lookup(env, name) {
                    return Ok(v);
                }
                if let Some(d) = self.globals.get(name) {
                    return Ok(Value::Closure(Rc::new(ClosureVal {
                        params: d.params.clone(),
                        body: d.body.clone(),
                        env: Rc::new(EnvNode::Empty),
                    })));
                }
                Err(InterpError(format!("unbound variable {name}")))
            }
            Expr::If(c, t, f) => {
                if self.eval(c, env)?.is_truthy() {
                    self.eval(t, env)
                } else {
                    self.eval(f, env)
                }
            }
            Expr::Let(binds, body) => {
                let mut env = env.clone();
                for (n, init) in binds {
                    let v = self.eval(init, &env)?;
                    env = bind(&env, n, v);
                }
                self.eval_body(body, &env)
            }
            Expr::Begin(es) => self.eval_body(es, env),
            Expr::And(es) => {
                let mut last = Value::Bool(true);
                for e in es {
                    last = self.eval(e, env)?;
                    if !last.is_truthy() {
                        return Ok(last);
                    }
                }
                Ok(last)
            }
            Expr::Or(es) => {
                let mut last = Value::Bool(false);
                for e in es {
                    last = self.eval(e, env)?;
                    if last.is_truthy() {
                        return Ok(last);
                    }
                }
                Ok(last)
            }
            Expr::Lambda(params, body) => Ok(Value::Closure(Rc::new(ClosureVal {
                params: params.clone(),
                body: body.clone(),
                env: env.clone(),
            }))),
            Expr::Call(f, args) => {
                // Direct global call avoids building a closure value.
                if let Expr::Var(name) = &**f {
                    if lookup(env, name).is_none() {
                        if let Some(d) = self.globals.get(name).cloned() {
                            let args = args
                                .iter()
                                .map(|a| self.eval(a, env))
                                .collect::<Result<Vec<_>, _>>()?;
                            return self.call_def(&d, args);
                        }
                    }
                }
                let fv = self.eval(f, env)?;
                let args = args
                    .iter()
                    .map(|a| self.eval(a, env))
                    .collect::<Result<Vec<_>, _>>()?;
                match fv {
                    Value::Closure(c) => {
                        if c.params.len() != args.len() {
                            return Err(InterpError("arity mismatch".into()));
                        }
                        let mut env = c.env.clone();
                        for (p, a) in c.params.iter().zip(args) {
                            env = bind(&env, p, a);
                        }
                        self.eval_body(&c.body, &env)
                    }
                    other => Err(InterpError(format!("call of non-procedure {other}"))),
                }
            }
            Expr::Prim(p, args) => {
                let args = args
                    .iter()
                    .map(|a| self.eval(a, env))
                    .collect::<Result<Vec<_>, _>>()?;
                self.prim(*p, args)
            }
            // Sequential future semantics: evaluate in place.
            Expr::Future(e, on) => {
                if let Some(node) = on {
                    self.eval(node, env)?;
                }
                self.eval(e, env)
            }
            Expr::Touch(e) => self.eval(e, env),
        }
    }

    fn prim(&mut self, p: Prim, args: Vec<Value>) -> Result<Value, InterpError> {
        let int = |v: &Value| {
            v.as_int()
                .ok_or_else(|| InterpError(format!("expected fixnum, got {v}")))
        };
        Ok(match p {
            Prim::Add => Value::Int(wrap30(int(&args[0])? as i64 + int(&args[1])? as i64)),
            Prim::Sub => Value::Int(wrap30(int(&args[0])? as i64 - int(&args[1])? as i64)),
            Prim::Mul => Value::Int(wrap30(int(&args[0])? as i64 * int(&args[1])? as i64)),
            Prim::Quotient => {
                let d = int(&args[1])?;
                if d == 0 {
                    return Err(InterpError("divide by zero".into()));
                }
                Value::Int(wrap30((int(&args[0])? / d) as i64))
            }
            Prim::Remainder => {
                let d = int(&args[1])?;
                if d == 0 {
                    return Err(InterpError("divide by zero".into()));
                }
                Value::Int(wrap30((int(&args[0])? % d) as i64))
            }
            Prim::Lt => Value::Bool(int(&args[0])? < int(&args[1])?),
            Prim::Le => Value::Bool(int(&args[0])? <= int(&args[1])?),
            Prim::Gt => Value::Bool(int(&args[0])? > int(&args[1])?),
            Prim::Ge => Value::Bool(int(&args[0])? >= int(&args[1])?),
            Prim::NumEq => Value::Bool(int(&args[0])? == int(&args[1])?),
            Prim::Eq => Value::Bool(args[0] == args[1]),
            Prim::Not => Value::Bool(!args[0].is_truthy()),
            Prim::Cons => Value::Pair(Rc::new((args[0].clone(), args[1].clone()))),
            Prim::Car => match &args[0] {
                Value::Pair(p) => p.0.clone(),
                other => return Err(InterpError(format!("car of {other}"))),
            },
            Prim::Cdr => match &args[0] {
                Value::Pair(p) => p.1.clone(),
                other => return Err(InterpError(format!("cdr of {other}"))),
            },
            Prim::NullP => Value::Bool(matches!(args[0], Value::Nil)),
            Prim::PairP => Value::Bool(matches!(args[0], Value::Pair(_))),
            Prim::MakeVector => {
                let n = int(&args[0])?;
                if n < 0 {
                    return Err(InterpError("negative vector length".into()));
                }
                Value::Vector(Rc::new(RefCell::new(vec![args[1].clone(); n as usize])))
            }
            Prim::VectorRef => match &args[0] {
                Value::Vector(v) => {
                    let i = int(&args[1])? as usize;
                    v.borrow()
                        .get(i)
                        .cloned()
                        .ok_or_else(|| InterpError("vector index out of range".into()))?
                }
                other => return Err(InterpError(format!("vector-ref of {other}"))),
            },
            Prim::VectorSet => match &args[0] {
                Value::Vector(v) => {
                    let i = int(&args[1])? as usize;
                    let mut v = v.borrow_mut();
                    if i >= v.len() {
                        return Err(InterpError("vector index out of range".into()));
                    }
                    v[i] = args[2].clone();
                    args[2].clone()
                }
                other => return Err(InterpError(format!("vector-set! of {other}"))),
            },
            Prim::VectorLength => match &args[0] {
                Value::Vector(v) => Value::Int(v.borrow().len() as i32),
                other => return Err(InterpError(format!("vector-length of {other}"))),
            },
            Prim::Print => {
                self.prints.push(args[0].clone());
                args[0].clone()
            }
        })
    }
}

/// Wraps to the 30-bit fixnum range, matching the hardware's tagged
/// arithmetic (which truncates to the 30-bit field).
fn wrap30(v: i64) -> i32 {
    ((v << 2) as i32) >> 2
}

/// Parses and interprets `src`, returning `(main)`'s value.
///
/// # Errors
///
/// Returns [`InterpError`] on front-end or dynamic errors.
pub fn interpret(src: &str) -> Result<Value, InterpError> {
    let ast = crate::ast::parse_program(src).map_err(|e| InterpError(e.to_string()))?;
    Interp::new(&ast).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: &str) -> Value {
        interpret(src).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn arithmetic_and_structures() {
        assert_eq!(ev("(define (main) (+ 1 (* 2 3)))"), Value::Int(7));
        assert_eq!(ev("(define (main) (car (cons 1 2)))"), Value::Int(1));
        assert_eq!(
            ev("(define (main) (vector-ref (make-vector 3 9) 2))"),
            Value::Int(9)
        );
    }

    #[test]
    fn fib_matches_closed_form() {
        let src =
            "(define (fib n) (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
                   (define (main) (fib 12))";
        assert_eq!(ev(src), Value::Int(144));
    }

    #[test]
    fn closures_capture_lexically() {
        assert_eq!(
            ev("(define (adder n) (lambda (x) (+ x n)))
                (define (main) ((adder 3) ((adder 4) 10)))"),
            Value::Int(17)
        );
    }

    #[test]
    fn fixnum_wraparound_matches_hardware() {
        // 2^29 overflows the 30-bit fixnum and wraps negative, exactly
        // like the tagged hardware add.
        let v = ev("(define (main) (+ 536870911 1))");
        assert_eq!(v, Value::Int(-(1 << 29)));
    }

    #[test]
    fn errors_are_reported() {
        assert!(interpret("(define (main) (car 5))").is_err());
        assert!(interpret("(define (main) (quotient 1 0))").is_err());
        assert!(interpret("(define (main) (f))").is_err());
    }

    #[test]
    fn infinite_recursion_is_caught() {
        let e = interpret("(define (loop) (loop)) (define (main) (loop))").unwrap_err();
        assert!(e.0.contains("too deep"));
    }

    #[test]
    fn prints_collect() {
        let ast =
            crate::ast::parse_program("(define (main) (begin (print 1) (print (cons 1 2)) 0))")
                .unwrap();
        let mut i = Interp::new(&ast);
        i.run().unwrap();
        assert_eq!(i.prints.len(), 2);
        assert_eq!(i.prints[0], Value::Int(1));
    }
}
