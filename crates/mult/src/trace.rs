//! Parallel trace generation — the left path of the paper's Figure 4:
//! "T-Mul-T emulator/tracer → parallel traces → post-mortem
//! scheduler".
//!
//! The tracer evaluates a Mul-T program sequentially while recording
//! the **task graph** a parallel execution would have: one task per
//! `future`, with the work (in evaluation steps) each task performs
//! between its spawn and touch events. The [`postmortem`](crate::postmortem)
//! scheduler then replays the graph onto P abstract processors.

use crate::ast::{Definition, Expr, Prim, ProgramAst};
use crate::interp::Value;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// An event separating two work segments of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// This task created task `n`.
    Spawn(usize),
    /// This task touched (joined on) task `n`'s result.
    Touch(usize),
}

/// One task's recorded behavior: `segments[0]`, then `events[0]`, then
/// `segments[1]`, … — always one more segment than events.
#[derive(Debug, Clone, Default)]
pub struct TaskTrace {
    /// Work amounts (evaluation steps) between events.
    pub segments: Vec<u64>,
    /// Spawn/touch events between segments.
    pub events: Vec<TraceEvent>,
}

impl TaskTrace {
    /// Total work in this task.
    pub fn total_work(&self) -> u64 {
        self.segments.iter().sum()
    }
}

/// A recorded parallel trace: task 0 is the root (main).
#[derive(Debug, Clone, Default)]
pub struct ParallelTrace {
    /// All tasks, indexed by id.
    pub tasks: Vec<TaskTrace>,
}

impl ParallelTrace {
    /// Total work across all tasks (the T₁ of Brent's bound).
    pub fn total_work(&self) -> u64 {
        self.tasks.iter().map(TaskTrace::total_work).sum()
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

/// A value that is the (already computed) result of a traced task.
#[derive(Debug, Clone)]
struct FutureVal {
    task: usize,
    value: Value,
}

/// Tracer failure (dynamic error in the program).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError(pub String);

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for TraceError {}

/// Traced values: either plain interpreter values or task-tagged
/// futures (which non-strict operations pass through untouched).
#[derive(Debug, Clone)]
enum TVal {
    Plain(Value),
    Future(Rc<FutureVal>),
}

type Env = Vec<(String, TVal)>;

struct Tracer {
    globals: HashMap<String, Definition>,
    trace: ParallelTrace,
    cur: usize,
    work: u64,
    fuel: u64,
    depth: u32,
}

/// Traces `src`, returning the task graph and the program result.
///
/// # Errors
///
/// Returns [`TraceError`] on front-end or dynamic errors.
pub fn trace_program(src: &str) -> Result<(ParallelTrace, Value), TraceError> {
    let ast = crate::ast::parse_program(src).map_err(|e| TraceError(e.to_string()))?;
    trace_ast(&ast)
}

/// Traces an already-parsed program.
///
/// # Errors
///
/// As for [`trace_program`].
pub fn trace_ast(ast: &ProgramAst) -> Result<(ParallelTrace, Value), TraceError> {
    let mut t = Tracer {
        globals: ast
            .defs
            .iter()
            .map(|d| (d.name.clone(), d.clone()))
            .collect(),
        trace: ParallelTrace {
            tasks: vec![TaskTrace::default()],
        },
        cur: 0,
        work: 0,
        fuel: 100_000_000,
        depth: 0,
    };
    let main = t
        .globals
        .get("main")
        .cloned()
        .ok_or_else(|| TraceError("no main".into()))?;
    let v = t.call_def(&main, Vec::new())?;
    let v = t.strictly(v); // the result itself is touched at the end
    t.close_segment();
    Ok((t.trace, v))
}

impl Tracer {
    /// Ends the current task's running segment.
    fn close_segment(&mut self) {
        let w = std::mem::take(&mut self.work);
        self.trace.tasks[self.cur].segments.push(w);
    }

    fn event(&mut self, e: TraceEvent) {
        self.close_segment();
        self.trace.tasks[self.cur].events.push(e);
    }

    /// Unwraps a future, recording the touch edge. (A `FutureVal`
    /// stores a plain `Value`, so chains are already flattened.)
    fn strictly(&mut self, v: TVal) -> Value {
        match v {
            TVal::Plain(p) => p,
            TVal::Future(f) => {
                self.event(TraceEvent::Touch(f.task));
                f.value.clone()
            }
        }
    }

    fn call_def(&mut self, d: &Definition, args: Vec<TVal>) -> Result<TVal, TraceError> {
        if d.params.len() != args.len() {
            return Err(TraceError(format!("{} arity", d.name)));
        }
        let mut env: Env = Vec::new();
        for (p, a) in d.params.iter().zip(args) {
            env.push((p.clone(), a));
        }
        self.eval_body(&d.body, &env)
    }

    fn eval_body(&mut self, body: &[Expr], env: &Env) -> Result<TVal, TraceError> {
        if self.depth > 200 {
            return Err(TraceError("recursion too deep for the tracer".into()));
        }
        self.depth += 1;
        let mut last = TVal::Plain(Value::Bool(false));
        for e in body {
            match self.eval(e, env) {
                Ok(v) => last = v,
                Err(err) => {
                    self.depth -= 1;
                    return Err(err);
                }
            }
        }
        self.depth -= 1;
        Ok(last)
    }

    fn eval(&mut self, e: &Expr, env: &Env) -> Result<TVal, TraceError> {
        self.work += 1;
        self.fuel = self
            .fuel
            .checked_sub(1)
            .ok_or_else(|| TraceError("fuel".into()))?;
        Ok(match e {
            Expr::Int(n) => TVal::Plain(Value::Int(*n)),
            Expr::Bool(b) => TVal::Plain(Value::Bool(*b)),
            Expr::Nil => TVal::Plain(Value::Nil),
            Expr::Var(name) => {
                if let Some((_, v)) = env.iter().rev().find(|(n, _)| n == name) {
                    v.clone()
                } else if self.globals.contains_key(name) {
                    // Globals as values are rare in traces; treat as an
                    // opaque closure marker.
                    TVal::Plain(Value::Nil)
                } else {
                    return Err(TraceError(format!("unbound {name}")));
                }
            }
            Expr::If(c, t, f) => {
                let cv = self.eval(c, env)?;
                let cv = self.strictly(cv);
                if cv.is_truthy() {
                    self.eval(t, env)?
                } else {
                    self.eval(f, env)?
                }
            }
            Expr::Let(binds, body) => {
                let mut env = env.clone();
                for (n, init) in binds {
                    let v = self.eval(init, &env)?;
                    env.push((n.clone(), v));
                }
                self.eval_body(body, &env)?
            }
            Expr::Begin(es) => {
                let mut last = TVal::Plain(Value::Bool(false));
                for e in es {
                    last = self.eval(e, env)?;
                }
                last
            }
            Expr::And(es) => {
                let mut last = TVal::Plain(Value::Bool(true));
                for e in es {
                    let v = self.eval(e, env)?;
                    let p = self.strictly(v);
                    let t = p.is_truthy();
                    last = TVal::Plain(p);
                    if !t {
                        break;
                    }
                }
                last
            }
            Expr::Or(es) => {
                let mut last = TVal::Plain(Value::Bool(false));
                for e in es {
                    let v = self.eval(e, env)?;
                    let p = self.strictly(v);
                    let t = p.is_truthy();
                    last = TVal::Plain(p);
                    if t {
                        break;
                    }
                }
                last
            }
            // The tracer doesn't model first-class closures precisely;
            // traced benchmarks use direct calls and futures. Lambdas
            // evaluate their body at call sites via Call below.
            Expr::Lambda(..) => TVal::Plain(Value::Nil),
            Expr::Call(f, args) => {
                let Expr::Var(name) = &**f else {
                    return Err(TraceError("tracer supports direct calls only".into()));
                };
                if env.iter().any(|(n, _)| n == name) {
                    return Err(TraceError("tracer supports direct calls only".into()));
                }
                let d = self
                    .globals
                    .get(name)
                    .cloned()
                    .ok_or_else(|| TraceError(format!("unknown procedure {name}")))?;
                let args = args
                    .iter()
                    .map(|a| self.eval(a, env))
                    .collect::<Result<Vec<_>, _>>()?;
                self.call_def(&d, args)?
            }
            Expr::Prim(p, args) => {
                let args = args
                    .iter()
                    .map(|a| self.eval(a, env))
                    .collect::<Result<Vec<_>, _>>()?;
                self.prim(*p, args)?
            }
            Expr::Future(e, on) => {
                if let Some(node) = on {
                    self.eval(node, env)?;
                }
                // Spawn: switch attribution to the child task.
                let child = self.trace.tasks.len();
                self.trace.tasks.push(TaskTrace::default());
                self.event(TraceEvent::Spawn(child));
                let parent = self.cur;
                self.cur = child;
                let v = self.eval(e, env)?;
                let v = self.strictly(v);
                self.close_segment();
                self.cur = parent;
                TVal::Future(Rc::new(FutureVal {
                    task: child,
                    value: v,
                }))
            }
            Expr::Touch(e) => {
                let v = self.eval(e, env)?;
                TVal::Plain(self.strictly(v))
            }
        })
    }

    fn prim(&mut self, p: Prim, args: Vec<TVal>) -> Result<TVal, TraceError> {
        // Strictness per primitive: unwrap (recording touches) exactly
        // the operands the hardware would trap on.
        let strict: Vec<Value> = match p {
            Prim::Cons => Vec::new(), // non-strict
            _ => args.iter().map(|a| self.strictly(a.clone())).collect(),
        };
        let int = |v: &Value| {
            v.as_int()
                .ok_or_else(|| TraceError(format!("fixnum, got {v}")))
        };
        let out = match p {
            Prim::Add => Value::Int(int(&strict[0])? + int(&strict[1])?),
            Prim::Sub => Value::Int(int(&strict[0])? - int(&strict[1])?),
            Prim::Mul => Value::Int(int(&strict[0])?.wrapping_mul(int(&strict[1])?)),
            Prim::Quotient => Value::Int(int(&strict[0])? / int(&strict[1])?.max(1)),
            Prim::Remainder => Value::Int(int(&strict[0])? % int(&strict[1])?.max(1)),
            Prim::Lt => Value::Bool(int(&strict[0])? < int(&strict[1])?),
            Prim::Le => Value::Bool(int(&strict[0])? <= int(&strict[1])?),
            Prim::Gt => Value::Bool(int(&strict[0])? > int(&strict[1])?),
            Prim::Ge => Value::Bool(int(&strict[0])? >= int(&strict[1])?),
            Prim::NumEq => Value::Bool(int(&strict[0])? == int(&strict[1])?),
            Prim::Eq => Value::Bool(strict[0] == strict[1]),
            Prim::Not => Value::Bool(!strict[0].is_truthy()),
            Prim::Cons => {
                // Futures stored into data structures lose their task
                // edge in the trace (the post-mortem scheduler is an
                // approximation, as the paper notes when preferring
                // execution-driven simulation).
                let a = match &args[0] {
                    TVal::Plain(v) => v.clone(),
                    TVal::Future(f) => f.value.clone(),
                };
                let b = match &args[1] {
                    TVal::Plain(v) => v.clone(),
                    TVal::Future(f) => f.value.clone(),
                };
                Value::Pair(Rc::new((a, b)))
            }
            Prim::Car => match &strict[0] {
                Value::Pair(p) => p.0.clone(),
                other => return Err(TraceError(format!("car of {other}"))),
            },
            Prim::Cdr => match &strict[0] {
                Value::Pair(p) => p.1.clone(),
                other => return Err(TraceError(format!("cdr of {other}"))),
            },
            Prim::NullP => Value::Bool(matches!(strict[0], Value::Nil)),
            Prim::PairP => Value::Bool(matches!(strict[0], Value::Pair(_))),
            Prim::MakeVector => {
                let n = int(&strict[0])?.max(0) as usize;
                Value::Vector(Rc::new(std::cell::RefCell::new(vec![strict[1].clone(); n])))
            }
            Prim::VectorRef => match &strict[0] {
                Value::Vector(v) => v
                    .borrow()
                    .get(int(&strict[1])? as usize)
                    .cloned()
                    .ok_or_else(|| TraceError("index".into()))?,
                other => return Err(TraceError(format!("vector-ref of {other}"))),
            },
            Prim::VectorSet => match &strict[0] {
                Value::Vector(v) => {
                    let i = int(&strict[1])? as usize;
                    v.borrow_mut()[i] = strict[2].clone();
                    strict[2].clone()
                }
                other => return Err(TraceError(format!("vector-set! of {other}"))),
            },
            Prim::VectorLength => match &strict[0] {
                Value::Vector(v) => Value::Int(v.borrow().len() as i32),
                other => return Err(TraceError(format!("vector-length of {other}"))),
            },
            Prim::Print => strict[0].clone(),
        };
        Ok(TVal::Plain(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fib_trace_has_one_task_per_future() {
        let src =
            "(define (fib n) (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
                   (define (main) (fib 6))";
        let (trace, v) = trace_program(src).unwrap();
        assert_eq!(v, Value::Int(8));
        // calls(6) = 25; every non-leaf call spawns 2 futures.
        assert!(trace.len() > 10, "only {} tasks", trace.len());
        // Every spawned task is eventually touched by someone.
        let mut touched = vec![false; trace.len()];
        for t in &trace.tasks {
            for e in &t.events {
                if let TraceEvent::Touch(n) = e {
                    touched[*n] = true;
                }
            }
        }
        assert!(touched.iter().skip(1).all(|&t| t), "untouched task");
    }

    #[test]
    fn sequential_program_is_one_task() {
        let (trace, v) = trace_program("(define (main) (+ 1 2))").unwrap();
        assert_eq!(v, Value::Int(3));
        assert_eq!(trace.len(), 1);
        assert!(trace.tasks[0].events.is_empty());
        assert!(trace.total_work() > 0);
    }

    #[test]
    fn segments_bracket_events() {
        let (trace, _) = trace_program("(define (main) (touch (future 5)))").unwrap();
        for t in &trace.tasks {
            assert_eq!(t.segments.len(), t.events.len() + 1);
        }
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn work_is_conserved_across_spawning() {
        // The same computation with and without futures does the same
        // total work (futures only move work between tasks).
        let seq =
            trace_program("(define (f n) (if (= n 0) 0 (+ n (f (- n 1))))) (define (main) (f 10))")
                .unwrap()
                .0;
        let par = trace_program(
            "(define (f n) (if (= n 0) 0 (+ n (touch (future (f (- n 1))))))) (define (main) (f 10))",
        )
        .unwrap()
        .0;
        assert_eq!(seq.len(), 1);
        assert_eq!(par.len(), 11);
        // Touch/future wrappers add a couple of eval steps per level.
        let diff = par.total_work() as i64 - seq.total_work() as i64;
        assert!(diff.unsigned_abs() < 40, "work diverged by {diff}");
    }
}
