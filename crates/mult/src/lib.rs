//! # april-mult — the Mul-T compiler
//!
//! Mul-T is the paper's "extended version of Scheme" whose `future`
//! construct generates concurrency (Section 2.2). This crate compiles
//! a Mul-T subset to APRIL machine code against the run-time ABI of
//! `april-runtime`:
//!
//! * [`sexpr`] — the reader.
//! * [`ast`] — the AST and lowering.
//! * [`target`] — compilation targets: T-seq (futures elided, no
//!   checks), Encore (software future detection — the ~2× sequential
//!   overhead of Table 3), and APRIL (hardware tag traps), with eager
//!   or lazy task creation.
//! * [`codegen`] — the accumulator-style code generator.
//! * [`programs`] — the paper's four benchmarks: `fib`, `factor`,
//!   `queens`, `speech`.
//! * [`interp`] — a reference interpreter used as a differential-
//!   testing oracle for the whole compile-and-run pipeline.
//! * [`trace`], [`postmortem`] — the paper's Figure 4 trace-driven
//!   path: record a parallel task graph, then schedule it post-mortem
//!   onto abstract processors.
//!
//! # Examples
//!
//! ```
//! use april_mult::{compile, CompileOptions};
//!
//! let prog = compile("(define (main) (+ 20 22))", &CompileOptions::april())?;
//! assert!(prog.len() > 0);
//! # Ok::<(), april_mult::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod interp;
pub mod postmortem;
pub mod programs;
pub mod sexpr;
pub mod target;
pub mod trace;

pub use codegen::{compile, compile_ast, CompileError};
pub use target::{CheckMode, CompileOptions, FutureMode};
