//! Mul-T abstract syntax and lowering from s-expressions.
//!
//! The subset implemented is what the paper's benchmarks and run-time
//! idioms need: fixnums, booleans, pairs, vectors, closures,
//! `define`/`let`/`if`/`begin`/`and`/`or`, recursion, and the
//! concurrency forms `future`, `future-on` and `touch` (Section 2.2).

use crate::sexpr::{read_all, SExpr};
use std::fmt;

/// Primitive operations (strict unless noted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prim {
    /// `(+ a b)`
    Add,
    /// `(- a b)`
    Sub,
    /// `(* a b)`
    Mul,
    /// `(quotient a b)`
    Quotient,
    /// `(remainder a b)`
    Remainder,
    /// `(< a b)`
    Lt,
    /// `(<= a b)`
    Le,
    /// `(> a b)`
    Gt,
    /// `(>= a b)`
    Ge,
    /// `(= a b)` (numeric equality)
    NumEq,
    /// `(eq? a b)` (identity; strict so futures compare by value)
    Eq,
    /// `(not a)` (non-strict: compares against `#f`)
    Not,
    /// `(cons a d)` (non-strict in both arguments)
    Cons,
    /// `(car p)` (strict in `p`)
    Car,
    /// `(cdr p)`
    Cdr,
    /// `(null? x)`
    NullP,
    /// `(pair? x)`
    PairP,
    /// `(make-vector n init)`
    MakeVector,
    /// `(vector-ref v i)`
    VectorRef,
    /// `(vector-set! v i x)`
    VectorSet,
    /// `(vector-length v)`
    VectorLength,
    /// `(print x)` — debug output via the run-time system.
    Print,
}

impl Prim {
    /// Number of arguments.
    pub fn arity(self) -> usize {
        match self {
            Prim::Not
            | Prim::Car
            | Prim::Cdr
            | Prim::NullP
            | Prim::PairP
            | Prim::VectorLength
            | Prim::Print => 1,
            Prim::VectorSet => 3,
            _ => 2,
        }
    }

    fn from_name(s: &str) -> Option<Prim> {
        Some(match s {
            "+" => Prim::Add,
            "-" => Prim::Sub,
            "*" => Prim::Mul,
            "quotient" => Prim::Quotient,
            "remainder" => Prim::Remainder,
            "<" => Prim::Lt,
            "<=" => Prim::Le,
            ">" => Prim::Gt,
            ">=" => Prim::Ge,
            "=" => Prim::NumEq,
            "eq?" => Prim::Eq,
            "not" => Prim::Not,
            "cons" => Prim::Cons,
            "car" => Prim::Car,
            "cdr" => Prim::Cdr,
            "null?" => Prim::NullP,
            "pair?" => Prim::PairP,
            "make-vector" => Prim::MakeVector,
            "vector-ref" => Prim::VectorRef,
            "vector-set!" => Prim::VectorSet,
            "vector-length" => Prim::VectorLength,
            "print" => Prim::Print,
            _ => return None,
        })
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Fixnum literal.
    Int(i32),
    /// `#t` / `#f`.
    Bool(bool),
    /// `'()`.
    Nil,
    /// Variable reference.
    Var(String),
    /// `(if c t e)`; a missing `e` is `#f`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `(let ((x e) ...) body...)`.
    Let(Vec<(String, Expr)>, Vec<Expr>),
    /// `(begin e ...)`.
    Begin(Vec<Expr>),
    /// `(lambda (x ...) body...)`.
    Lambda(Vec<String>, Vec<Expr>),
    /// Procedure call.
    Call(Box<Expr>, Vec<Expr>),
    /// Primitive application.
    Prim(Prim, Vec<Expr>),
    /// `(and e ...)` (short-circuit).
    And(Vec<Expr>),
    /// `(or e ...)` (short-circuit).
    Or(Vec<Expr>),
    /// `(future e)` / `(future-on node e)`; the optional expression is
    /// the placement node.
    Future(Box<Expr>, Option<Box<Expr>>),
    /// `(touch e)`.
    Touch(Box<Expr>),
}

/// A toplevel `(define (name args...) body...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Definition {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body expressions.
    pub body: Vec<Expr>,
}

/// A whole program: definitions, one of which must be `main`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProgramAst {
    /// All toplevel definitions.
    pub defs: Vec<Definition>,
}

/// Front-end failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError(pub String);

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for LowerError {}

/// Parses and lowers Mul-T source to the AST.
///
/// # Errors
///
/// Returns [`LowerError`] on syntax errors or unknown forms.
pub fn parse_program(src: &str) -> Result<ProgramAst, LowerError> {
    let forms = read_all(src).map_err(|e| LowerError(e.to_string()))?;
    let mut defs = Vec::new();
    for f in forms {
        defs.push(lower_define(&f)?);
    }
    Ok(ProgramAst { defs })
}

fn lower_define(s: &SExpr) -> Result<Definition, LowerError> {
    let items = s
        .list()
        .ok_or_else(|| LowerError(format!("expected (define ...), got {s}")))?;
    match items {
        [SExpr::Atom(d), SExpr::List(sig), body @ ..] if d == "define" && !body.is_empty() => {
            let mut names = sig.iter().map(|x| {
                x.atom()
                    .map(str::to_string)
                    .ok_or_else(|| LowerError(format!("bad parameter in {s}")))
            });
            let name = names
                .next()
                .ok_or_else(|| LowerError("empty define signature".into()))??;
            let params = names.collect::<Result<Vec<_>, _>>()?;
            let body = body.iter().map(lower).collect::<Result<Vec<_>, _>>()?;
            Ok(Definition { name, params, body })
        }
        _ => Err(LowerError(format!(
            "only (define (name args...) body...) allowed at toplevel, got {s}"
        ))),
    }
}

fn lower_all(xs: &[SExpr]) -> Result<Vec<Expr>, LowerError> {
    xs.iter().map(lower).collect()
}

fn lower(s: &SExpr) -> Result<Expr, LowerError> {
    match s {
        SExpr::Atom(a) => lower_atom(a),
        SExpr::List(items) => {
            let Some(head) = items.first() else {
                return Ok(Expr::Nil); // bare ()
            };
            if let Some(name) = head.atom() {
                match name {
                    "quote" => {
                        return match &items[1..] {
                            [SExpr::List(l)] if l.is_empty() => Ok(Expr::Nil),
                            other => {
                                Err(LowerError(format!("only '() is quotable, got {other:?}")))
                            }
                        }
                    }
                    "if" => {
                        return match &items[1..] {
                            [c, t] => Ok(Expr::If(
                                Box::new(lower(c)?),
                                Box::new(lower(t)?),
                                Box::new(Expr::Bool(false)),
                            )),
                            [c, t, e] => Ok(Expr::If(
                                Box::new(lower(c)?),
                                Box::new(lower(t)?),
                                Box::new(lower(e)?),
                            )),
                            _ => Err(LowerError(format!("bad if: {s}"))),
                        }
                    }
                    "let" => {
                        let [SExpr::List(binds), body @ ..] = &items[1..] else {
                            return Err(LowerError(format!("bad let: {s}")));
                        };
                        if body.is_empty() {
                            return Err(LowerError(format!("empty let body: {s}")));
                        }
                        let mut bs = Vec::new();
                        for b in binds {
                            let Some([SExpr::Atom(n), init]) = b.list() else {
                                return Err(LowerError(format!("bad binding {b} in {s}")));
                            };
                            bs.push((n.clone(), lower(init)?));
                        }
                        return Ok(Expr::Let(bs, lower_all(body)?));
                    }
                    "begin" => return Ok(Expr::Begin(lower_all(&items[1..])?)),
                    "lambda" => {
                        let [SExpr::List(ps), body @ ..] = &items[1..] else {
                            return Err(LowerError(format!("bad lambda: {s}")));
                        };
                        let params = ps
                            .iter()
                            .map(|p| {
                                p.atom()
                                    .map(str::to_string)
                                    .ok_or_else(|| LowerError(format!("bad lambda param in {s}")))
                            })
                            .collect::<Result<Vec<_>, _>>()?;
                        return Ok(Expr::Lambda(params, lower_all(body)?));
                    }
                    "and" => return Ok(Expr::And(lower_all(&items[1..])?)),
                    "or" => return Ok(Expr::Or(lower_all(&items[1..])?)),
                    "future" => {
                        let [e] = &items[1..] else {
                            return Err(LowerError(format!("bad future: {s}")));
                        };
                        return Ok(Expr::Future(Box::new(lower(e)?), None));
                    }
                    "future-on" => {
                        let [node, e] = &items[1..] else {
                            return Err(LowerError(format!("bad future-on: {s}")));
                        };
                        return Ok(Expr::Future(
                            Box::new(lower(e)?),
                            Some(Box::new(lower(node)?)),
                        ));
                    }
                    "touch" => {
                        let [e] = &items[1..] else {
                            return Err(LowerError(format!("bad touch: {s}")));
                        };
                        return Ok(Expr::Touch(Box::new(lower(e)?)));
                    }
                    _ => {
                        if let Some(p) = Prim::from_name(name) {
                            let args = lower_all(&items[1..])?;
                            if args.len() != p.arity() {
                                return Err(LowerError(format!(
                                    "{name} expects {} args, got {} in {s}",
                                    p.arity(),
                                    args.len()
                                )));
                            }
                            return Ok(Expr::Prim(p, args));
                        }
                    }
                }
            }
            // General call.
            let f = lower(head)?;
            Ok(Expr::Call(Box::new(f), lower_all(&items[1..])?))
        }
    }
}

fn lower_atom(a: &str) -> Result<Expr, LowerError> {
    match a {
        "#t" => Ok(Expr::Bool(true)),
        "#f" => Ok(Expr::Bool(false)),
        _ => {
            if let Ok(n) = a.parse::<i32>() {
                Ok(Expr::Int(n))
            } else {
                Ok(Expr::Var(a.to_string()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowers_fib() {
        let p = parse_program(
            "(define (fib n) (if (< n 2) n (+ (touch (future (fib (- n 1)))) (fib (- n 2)))))
             (define (main) (fib 10))",
        )
        .unwrap();
        assert_eq!(p.defs.len(), 2);
        assert_eq!(p.defs[0].name, "fib");
        assert_eq!(p.defs[0].params, vec!["n"]);
    }

    #[test]
    fn literals() {
        let p = parse_program("(define (main) (if #t 1 #f))").unwrap();
        match &p.defs[0].body[0] {
            Expr::If(c, t, e) => {
                assert_eq!(**c, Expr::Bool(true));
                assert_eq!(**t, Expr::Int(1));
                assert_eq!(**e, Expr::Bool(false));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn quote_nil() {
        let p = parse_program("(define (main) (cons 1 '()))").unwrap();
        match &p.defs[0].body[0] {
            Expr::Prim(Prim::Cons, args) => assert_eq!(args[1], Expr::Nil),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn future_on_placement() {
        let p = parse_program("(define (main) (future-on 3 (+ 1 2)))").unwrap();
        match &p.defs[0].body[0] {
            Expr::Future(_, Some(node)) => assert_eq!(**node, Expr::Int(3)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arity_checked() {
        let e = parse_program("(define (main) (car 1 2))").unwrap_err();
        assert!(e.0.contains("expects 1 args"));
    }

    #[test]
    fn toplevel_must_be_define() {
        assert!(parse_program("(+ 1 2)").is_err());
    }

    #[test]
    fn let_and_lambda() {
        let p = parse_program("(define (main) (let ((f (lambda (x) (* x x)))) (f 4)))").unwrap();
        match &p.defs[0].body[0] {
            Expr::Let(binds, body) => {
                assert_eq!(binds[0].0, "f");
                assert!(matches!(binds[0].1, Expr::Lambda(..)));
                assert!(matches!(body[0], Expr::Call(..)));
            }
            other => panic!("{other:?}"),
        }
    }
}
