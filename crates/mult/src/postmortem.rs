//! The post-mortem scheduler — the right half of the paper's Figure 4
//! trace-driven path: replay a recorded [`ParallelTrace`] onto P
//! abstract processors and predict the parallel execution time.
//!
//! The paper notes the execution-driven APRIL simulator "provides more
//! accurate results than a trace driven simulation"; the `postmortem`
//! bench binary quantifies exactly that gap on the same programs.

use crate::trace::{ParallelTrace, TraceEvent};
use std::collections::VecDeque;

/// Cost parameters of the abstract machine, in the trace's work units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmConfig {
    /// Cost charged to the spawning processor per task created.
    pub spawn_overhead: u64,
    /// Cost of a touch that finds its task complete.
    pub touch_overhead: u64,
    /// Cost of suspending on an incomplete task (unload + later wake).
    pub block_overhead: u64,
}

impl Default for PmConfig {
    fn default() -> PmConfig {
        PmConfig {
            spawn_overhead: 10,
            touch_overhead: 2,
            block_overhead: 10,
        }
    }
}

/// The predicted outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct PmResult {
    /// Predicted makespan in work units.
    pub makespan: u64,
    /// Work units actually executed (excluding idle).
    pub busy: u64,
    /// Number of processors simulated.
    pub procs: usize,
}

impl PmResult {
    /// Mean processor utilization.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.busy as f64 / (self.makespan as f64 * self.procs as f64)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    NotSpawned,
    Ready,
    Running,
    /// Blocked waiting for another task to finish.
    Blocked,
    Done,
}

struct Sim<'t> {
    trace: &'t ParallelTrace,
    cfg: PmConfig,
    state: Vec<TaskState>,
    /// Next (segment, event) position per task.
    pos: Vec<usize>,
    /// Tasks blocked on task `k`.
    waiters: Vec<Vec<usize>>,
    ready: VecDeque<usize>,
}

/// Schedules `trace` onto `procs` processors (greedy FIFO list
/// scheduling, one context per processor — the idealized machine the
/// paper's post-mortem scheduler models).
///
/// # Panics
///
/// Panics if the trace is malformed (touch of a never-spawned task).
pub fn schedule(trace: &ParallelTrace, procs: usize, cfg: PmConfig) -> PmResult {
    assert!(procs > 0);
    let n = trace.len();
    let mut sim = Sim {
        trace,
        cfg,
        state: vec![TaskState::NotSpawned; n],
        pos: vec![0; n],
        waiters: vec![Vec::new(); n],
        ready: VecDeque::new(),
    };
    if n == 0 {
        return PmResult {
            makespan: 0,
            busy: 0,
            procs,
        };
    }
    sim.state[0] = TaskState::Ready;
    sim.ready.push_back(0);

    // Each processor: (busy_until, current task).
    let mut proc_task: Vec<Option<usize>> = vec![None; procs];
    let mut proc_time: Vec<u64> = vec![0; procs];
    let mut busy: u64 = 0;
    let mut makespan: u64 = 0;

    // Event loop: repeatedly give the earliest-free processor work.
    loop {
        // Find the earliest-available processor.
        let p = (0..procs).min_by_key(|&i| proc_time[i]).expect("procs > 0");
        // If it has no task, dispatch one.
        if proc_task[p].is_none() {
            match sim.ready.pop_front() {
                Some(t) => {
                    sim.state[t] = TaskState::Running;
                    proc_task[p] = Some(t);
                }
                None => {
                    // No work for the earliest processor: advance its
                    // clock to the next busy processor's time so a
                    // completion can release work.
                    let next = (0..procs)
                        .filter(|&i| proc_task[i].is_some())
                        .map(|i| proc_time[i])
                        .min();
                    match next {
                        Some(t) if t > proc_time[p] => {
                            proc_time[p] = t;
                            continue;
                        }
                        Some(_) => {
                            // Another processor finishes "now": run it.
                            let q = (0..procs)
                                .filter(|&i| proc_task[i].is_some())
                                .min_by_key(|&i| proc_time[i])
                                .expect("some busy");
                            step_task(&mut sim, &mut proc_task, &mut proc_time, &mut busy, q);
                            makespan = makespan.max(proc_time[q]);
                            continue;
                        }
                        None => break, // nothing running, nothing ready: done
                    }
                }
            }
        }
        step_task(&mut sim, &mut proc_task, &mut proc_time, &mut busy, p);
        makespan = makespan.max(proc_time[p]);
    }
    PmResult {
        makespan,
        busy,
        procs,
    }
}

/// Runs processor `p`'s current task up to its next event.
fn step_task(
    sim: &mut Sim<'_>,
    proc_task: &mut [Option<usize>],
    proc_time: &mut [u64],
    busy: &mut u64,
    p: usize,
) {
    let t = proc_task[p].expect("processor has a task");
    let tt = &sim.trace.tasks[t];
    let i = sim.pos[t];
    // Run the segment.
    let seg = tt.segments.get(i).copied().unwrap_or(0);
    proc_time[p] += seg;
    *busy += seg;
    if i >= tt.events.len() {
        // Final segment: task completes.
        sim.state[t] = TaskState::Done;
        proc_task[p] = None;
        for w in std::mem::take(&mut sim.waiters[t]) {
            sim.state[w] = TaskState::Ready;
            sim.ready.push_back(w);
        }
        return;
    }
    sim.pos[t] = i + 1;
    match tt.events[i] {
        TraceEvent::Spawn(c) => {
            proc_time[p] += sim.cfg.spawn_overhead;
            *busy += sim.cfg.spawn_overhead;
            sim.state[c] = TaskState::Ready;
            sim.ready.push_back(c);
            // The parent keeps running on this processor.
        }
        TraceEvent::Touch(c) => {
            if sim.state[c] == TaskState::Done {
                proc_time[p] += sim.cfg.touch_overhead;
                *busy += sim.cfg.touch_overhead;
            } else {
                assert!(
                    sim.state[c] != TaskState::NotSpawned,
                    "touch of never-spawned task {c}"
                );
                proc_time[p] += sim.cfg.block_overhead;
                *busy += sim.cfg.block_overhead;
                sim.state[t] = TaskState::Blocked;
                sim.waiters[c].push(t);
                proc_task[p] = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::trace_program;

    fn fib_trace(n: u32) -> ParallelTrace {
        trace_program(&crate::programs::fib(n)).unwrap().0
    }

    #[test]
    fn one_processor_equals_total_work_plus_overheads() {
        let t = fib_trace(6);
        let r = schedule(
            &t,
            1,
            PmConfig {
                spawn_overhead: 0,
                touch_overhead: 0,
                block_overhead: 0,
            },
        );
        assert_eq!(r.makespan, t.total_work());
        assert_eq!(r.busy, t.total_work());
        assert!((r.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_processors_never_slow_it_down() {
        let t = fib_trace(8);
        let cfg = PmConfig::default();
        let mut prev = u64::MAX;
        for p in [1, 2, 4, 8, 16] {
            let r = schedule(&t, p, cfg);
            assert!(r.makespan <= prev, "p={p} regressed");
            prev = r.makespan;
        }
    }

    #[test]
    fn speedup_approaches_parallelism() {
        let t = fib_trace(10);
        let cfg = PmConfig {
            spawn_overhead: 2,
            touch_overhead: 1,
            block_overhead: 2,
        };
        let s1 = schedule(&t, 1, cfg).makespan;
        let s8 = schedule(&t, 8, cfg).makespan;
        let speedup = s1 as f64 / s8 as f64;
        assert!(speedup > 4.0, "8 procs gave only {speedup:.2}x");
    }

    #[test]
    fn sequential_trace_does_not_scale() {
        let t = trace_program("(define (f n) (if (= n 0) 0 (f (- n 1)))) (define (main) (f 50))")
            .unwrap()
            .0;
        let cfg = PmConfig::default();
        let s1 = schedule(&t, 1, cfg).makespan;
        let s8 = schedule(&t, 8, cfg).makespan;
        assert_eq!(s1, s8, "no parallelism to exploit");
    }

    #[test]
    fn deterministic() {
        let t = fib_trace(9);
        let a = schedule(&t, 4, PmConfig::default());
        let b = schedule(&t, 4, PmConfig::default());
        assert_eq!(a, b);
    }
}
