//! Compilation targets.
//!
//! The same Mul-T source compiles for three systems (paper, Section 7):
//!
//! * **T seq** — an optimizing sequential compiler: futures elided, no
//!   operand checks.
//! * **Encore Multimax** — no tag hardware: futures are created by
//!   software task primitives and every strict operation carries an
//!   explicit software operand check (the source of the Encore's ~2×
//!   sequential overhead in Table 3).
//! * **APRIL** — futures detected by hardware tag traps (zero cost on
//!   the non-future fast path) with eager or lazy task creation.

/// How `(future e)` compiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FutureMode {
    /// Futures elided: evaluate `e` in place (sequential code).
    #[default]
    None,
    /// Normal task creation: every future makes a task (Section 7's
    /// "APRIL using normal task creation").
    Eager,
    /// Lazy task creation (Section 3.2): a stealable descriptor,
    /// evaluated like a procedure call unless stolen.
    Lazy,
}

/// How strict operations detect futures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckMode {
    /// APRIL: tagged instructions trap in hardware; no extra cycles
    /// when no future appears.
    #[default]
    Hardware,
    /// Encore: explicit test-and-branch before every strict use.
    Software,
    /// T-seq: no checks at all (only valid with `FutureMode::None`).
    None,
}

/// A complete compilation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileOptions {
    /// Future compilation mode.
    pub future_mode: FutureMode,
    /// Strict-operand check mode.
    pub checks: CheckMode,
}

impl CompileOptions {
    /// The optimizing sequential T compiler (Table 3 column "T seq").
    pub fn t_seq() -> CompileOptions {
        CompileOptions {
            future_mode: FutureMode::None,
            checks: CheckMode::None,
        }
    }

    /// Mul-T sequential code on the Encore ("Mul-T seq" on Encore).
    pub fn encore_seq() -> CompileOptions {
        CompileOptions {
            future_mode: FutureMode::None,
            checks: CheckMode::Software,
        }
    }

    /// Parallel Mul-T on the Encore.
    pub fn encore() -> CompileOptions {
        CompileOptions {
            future_mode: FutureMode::Eager,
            checks: CheckMode::Software,
        }
    }

    /// Mul-T sequential code on APRIL (tag support makes it free).
    pub fn april_seq() -> CompileOptions {
        CompileOptions {
            future_mode: FutureMode::None,
            checks: CheckMode::Hardware,
        }
    }

    /// Parallel Mul-T on APRIL with normal task creation.
    pub fn april() -> CompileOptions {
        CompileOptions {
            future_mode: FutureMode::Eager,
            checks: CheckMode::Hardware,
        }
    }

    /// Parallel Mul-T on APRIL with lazy task creation ("Apr-lazy").
    pub fn april_lazy() -> CompileOptions {
        CompileOptions {
            future_mode: FutureMode::Lazy,
            checks: CheckMode::Hardware,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        assert_eq!(CompileOptions::t_seq().future_mode, FutureMode::None);
        assert_eq!(CompileOptions::encore().checks, CheckMode::Software);
        assert_eq!(CompileOptions::april_lazy().future_mode, FutureMode::Lazy);
        assert_eq!(CompileOptions::april().checks, CheckMode::Hardware);
    }
}
