//! S-expression reader for Mul-T source.

use std::fmt;

/// A parsed s-expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SExpr {
    /// Symbol or literal token.
    Atom(String),
    /// Parenthesized list.
    List(Vec<SExpr>),
}

impl SExpr {
    /// The atom's text, if this is an atom.
    pub fn atom(&self) -> Option<&str> {
        match self {
            SExpr::Atom(s) => Some(s),
            SExpr::List(_) => None,
        }
    }

    /// The list's items, if this is a list.
    pub fn list(&self) -> Option<&[SExpr]> {
        match self {
            SExpr::List(v) => Some(v),
            SExpr::Atom(_) => None,
        }
    }
}

impl fmt::Display for SExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SExpr::Atom(a) => f.write_str(a),
            SExpr::List(items) => {
                f.write_str("(")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{it}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// Reader failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    /// 1-based line of the failure.
    pub line: usize,
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ReadError {}

/// Reads all toplevel s-expressions from `src`. Comments run from `;`
/// to end of line. `'x` reads as `(quote x)`.
///
/// # Errors
///
/// Returns a [`ReadError`] on unbalanced parentheses or stray tokens.
///
/// # Examples
///
/// ```
/// use april_mult::sexpr::read_all;
/// let forms = read_all("(+ 1 2) ; comment\n(f)")?;
/// assert_eq!(forms.len(), 2);
/// assert_eq!(forms[0].to_string(), "(+ 1 2)");
/// # Ok::<(), april_mult::sexpr::ReadError>(())
/// ```
pub fn read_all(src: &str) -> Result<Vec<SExpr>, ReadError> {
    let mut tokens = tokenize(src);
    let mut out = Vec::new();
    while !tokens.is_empty() {
        out.push(read_one(&mut tokens)?);
    }
    Ok(out)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Open(usize),
    Close(usize),
    Quote(usize),
    Atom(String, usize),
}

fn tokenize(src: &str) -> std::collections::VecDeque<Tok> {
    let mut toks = std::collections::VecDeque::new();
    let mut line = 1;
    let mut cur = String::new();
    let flush = |cur: &mut String, toks: &mut std::collections::VecDeque<Tok>, line: usize| {
        if !cur.is_empty() {
            toks.push_back(Tok::Atom(std::mem::take(cur), line));
        }
    };
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\n' => {
                flush(&mut cur, &mut toks, line);
                line += 1;
            }
            ';' => {
                flush(&mut cur, &mut toks, line);
                for c2 in chars.by_ref() {
                    if c2 == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '(' | '[' => {
                flush(&mut cur, &mut toks, line);
                toks.push_back(Tok::Open(line));
            }
            ')' | ']' => {
                flush(&mut cur, &mut toks, line);
                toks.push_back(Tok::Close(line));
            }
            '\'' => {
                flush(&mut cur, &mut toks, line);
                toks.push_back(Tok::Quote(line));
            }
            c if c.is_whitespace() => flush(&mut cur, &mut toks, line),
            c => cur.push(c),
        }
    }
    flush(&mut cur, &mut toks, line);
    toks
}

fn read_one(toks: &mut std::collections::VecDeque<Tok>) -> Result<SExpr, ReadError> {
    match toks.pop_front() {
        None => Err(ReadError {
            line: 0,
            msg: "unexpected end of input".into(),
        }),
        Some(Tok::Atom(a, _)) => Ok(SExpr::Atom(a)),
        Some(Tok::Quote(line)) => {
            let inner = read_one(toks).map_err(|mut e| {
                if e.line == 0 {
                    e.line = line;
                }
                e
            })?;
            Ok(SExpr::List(vec![SExpr::Atom("quote".into()), inner]))
        }
        Some(Tok::Open(line)) => {
            let mut items = Vec::new();
            loop {
                match toks.front() {
                    None => {
                        return Err(ReadError {
                            line,
                            msg: "unclosed parenthesis".into(),
                        })
                    }
                    Some(Tok::Close(_)) => {
                        toks.pop_front();
                        return Ok(SExpr::List(items));
                    }
                    _ => items.push(read_one(toks)?),
                }
            }
        }
        Some(Tok::Close(line)) => Err(ReadError {
            line,
            msg: "unexpected `)`".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_nested_lists() {
        let f =
            read_all("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))").unwrap();
        assert_eq!(f.len(), 1);
        assert!(f[0].to_string().contains("(fib (- n 1))"));
    }

    #[test]
    fn comments_and_brackets() {
        let f = read_all("; header\n(f [a b] ; tail\n 1)").unwrap();
        assert_eq!(f[0].to_string(), "(f (a b) 1)");
    }

    #[test]
    fn quote_sugar() {
        let f = read_all("'()").unwrap();
        assert_eq!(f[0].to_string(), "(quote ())");
    }

    #[test]
    fn unbalanced_errors() {
        assert!(read_all("(a (b)").is_err());
        let e = read_all(")").unwrap_err();
        assert!(e.msg.contains("unexpected"));
    }

    #[test]
    fn accessors() {
        let f = read_all("(a 1)").unwrap();
        let l = f[0].list().unwrap();
        assert_eq!(l[0].atom(), Some("a"));
        assert_eq!(f[0].atom(), None);
    }
}
