//! Code generation: AST → APRIL machine code.
//!
//! A simple accumulator-style compiler: every expression leaves its
//! value in `r1`, with intermediate values on the thread's stack
//! (`r29`, growing upward). Closures are flat records
//! `[code, free₁, free₂, …]` tagged `other`; heap allocation is an
//! inline bump of the per-processor `g5`/`g6` registers with an
//! `RT_HEAP_MORE` refill path — the cheap allocation Mul-T's fine
//! grain tasking needs.
//!
//! Strict operations compile per the target:
//! * `Hardware` — tagged instructions (`tadd` …) that trap on a future
//!   operand at zero cost otherwise, and memory instructions whose
//!   address-operand tag check gives implicit touches for `car`-style
//!   dereferences (paper, Section 4).
//! * `Software` — an explicit 3-instruction test-and-branch per strict
//!   operand (the Encore baseline; the measured ~2× sequential
//!   overhead of Table 3).
//! * `None` — no checks (the sequential T compiler).

use crate::ast::{Expr, Prim, ProgramAst};
use crate::target::{CheckMode, CompileOptions, FutureMode};
use april_core::isa::{AluOp, Cond, Instr, Operand, Reg};
use april_core::program::{BuildError, Program, ProgramBuilder};
use april_core::word::Word;
use april_runtime::abi;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError(pub String);

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CompileError {}

impl From<BuildError> for CompileError {
    fn from(e: BuildError) -> CompileError {
        CompileError(e.to_string())
    }
}

const ACC: Reg = Reg::L(1); // accumulator == first arg == return value
const SP: Reg = abi::REG_SP;
const LINK: Reg = abi::REG_LINK;
const CLO: Reg = abi::REG_CLOSURE;
// Code-generator temporaries live in frame-local registers: unlike
// the globals, they are saved and restored when the run-time unloads a
// thread or another task frame runs, so values stay live across
// blocking touches and context switches. Only the heap pointer pair
// (`g5`/`g6`) is deliberately per-processor.
const T1: Reg = Reg::L(20);
const T2: Reg = Reg::L(21);
const T3: Reg = Reg::L(22);
const T4: Reg = Reg::L(23);

/// Base byte address of the static segment (inside node 0's reserved
/// page, above the singletons).
pub const STATIC_BASE: u32 = 0x1000;

/// Maximum procedure arity (arguments are passed in `r1`–`r6`).
pub const MAX_ARGS: usize = 6;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Binding {
    /// Stack slot index within the current frame (words from base).
    Slot(u32),
    /// Index into the closure's free-variable fields.
    Free(usize),
}

struct PendingLambda {
    label: String,
    params: Vec<String>,
    body: Vec<Expr>,
    free: Vec<String>,
}

struct Ctx {
    env: Vec<(String, Binding)>,
    depth: u32,
}

impl Ctx {
    fn lookup(&self, name: &str) -> Option<Binding> {
        self.env
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, b)| b)
    }
}

/// The code generator.
struct Gen {
    b: ProgramBuilder,
    opts: CompileOptions,
    globals: HashMap<String, String>,      // name -> code label
    global_closures: HashMap<String, u32>, // name -> static closure addr
    pending: Vec<PendingLambda>,
    fresh: usize,
}

/// Compiles a Mul-T program.
///
/// # Errors
///
/// Returns [`CompileError`] on front-end errors, unbound variables,
/// missing `main`, or arity overflow.
///
/// # Examples
///
/// ```
/// use april_mult::{compile, CompileOptions};
/// let prog = compile("(define (main) (+ 1 2))", &CompileOptions::april())?;
/// assert!(prog.label("__task_entry").is_some());
/// # Ok::<(), april_mult::CompileError>(())
/// ```
pub fn compile(src: &str, opts: &CompileOptions) -> Result<Program, CompileError> {
    let ast = crate::ast::parse_program(src).map_err(|e| CompileError(e.to_string()))?;
    compile_ast(&ast, opts)
}

/// Compiles an already-parsed program.
///
/// # Errors
///
/// As for [`compile`].
pub fn compile_ast(ast: &ProgramAst, opts: &CompileOptions) -> Result<Program, CompileError> {
    let mut g = Gen {
        b: ProgramBuilder::new(),
        opts: *opts,
        globals: HashMap::new(),
        global_closures: HashMap::new(),
        pending: Vec::new(),
        fresh: 0,
    };
    for d in &ast.defs {
        if d.params.len() > MAX_ARGS {
            return Err(CompileError(format!(
                "{} takes too many parameters",
                d.name
            )));
        }
        let label = format!("fn_{}", mangle(&d.name));
        if g.globals.insert(d.name.clone(), label).is_some() {
            return Err(CompileError(format!("duplicate definition of {}", d.name)));
        }
    }
    if !g.globals.contains_key("main") {
        return Err(CompileError("no (define (main) ...)".into()));
    }
    g.b.static_segment(STATIC_BASE, Vec::new());

    // Boot code at the entry point.
    g.b.label("__boot");
    g.b.entry("__boot");
    g.emit_direct_call("fn_main");
    g.b.emit(Instr::RtCall {
        n: abi::RT_MAIN_DONE,
    });

    g.emit_stubs();
    g.emit_make_vector();

    for d in &ast.defs {
        let label = g.globals[&d.name].clone();
        g.compile_function(&label, &d.params, &d.body, &[])?;
    }
    while let Some(l) = g.pending.pop() {
        g.compile_function(&l.label, &l.params, &l.body, &l.free)?;
    }
    Ok(g.b.finish()?)
}

fn mangle(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl Gen {
    fn fresh_label(&mut self, what: &str) -> String {
        self.fresh += 1;
        format!("{}_{}", what, self.fresh)
    }

    fn alu(&mut self, op: AluOp, s1: Reg, s2: impl Into<Operand>, d: Reg, tagged: bool) {
        self.b.emit(Instr::Alu {
            op,
            s1,
            s2: s2.into(),
            d,
            tagged,
        });
    }

    fn movi(&mut self, imm: u32, d: Reg) {
        self.b.emit(Instr::MovI { imm, d });
    }

    fn load(&mut self, a: Reg, offset: i32, d: Reg) {
        self.b.emit(Instr::Load {
            flavor: april_core::isa::LoadFlavor::NORMAL,
            a,
            offset,
            d,
        });
    }

    fn store(&mut self, s: Reg, a: Reg, offset: i32) {
        self.b.emit(Instr::Store {
            flavor: april_core::isa::StoreFlavor::NORMAL,
            a,
            offset,
            s,
        });
    }

    fn branch(&mut self, cond: Cond, target: &str) {
        self.b.branch_to(cond, target);
        self.b.emit(Instr::Nop); // delay slot
    }

    /// Pushes `r` (1 word) onto the stack.
    fn push(&mut self, ctx: &mut Ctx, r: Reg) {
        self.store(r, SP, 0);
        self.alu(AluOp::Add, SP, 4, SP, false);
        ctx.depth += 1;
    }

    /// Pops the top of stack into `r`.
    fn pop(&mut self, ctx: &mut Ctx, r: Reg) {
        self.alu(AluOp::Sub, SP, 4, SP, false);
        self.load(SP, 0, r);
        ctx.depth -= 1;
    }

    /// Loads the frame slot `k` into `d`.
    fn load_slot(&mut self, ctx: &Ctx, k: u32, d: Reg) {
        let off = (k as i32 - ctx.depth as i32) * 4;
        self.load(SP, off, d);
    }

    /// Loads a variable into `d` (may clobber `g4` for free vars).
    fn load_var(&mut self, ctx: &Ctx, name: &str, d: Reg) -> Result<(), CompileError> {
        match ctx.lookup(name) {
            Some(Binding::Slot(k)) => {
                self.load_slot(ctx, k, d);
                Ok(())
            }
            Some(Binding::Free(i)) => {
                // Reload our closure from frame slot 1 (r0 may have
                // been clobbered by a call), then the captured value.
                self.load_slot(ctx, 1, T4);
                self.load(T4, 4 * (i as i32 + 1) - 2, d);
                Ok(())
            }
            None => {
                if self.globals.contains_key(name) {
                    let addr = self.global_closure(name);
                    self.movi(Word::other_ptr(addr).0, d);
                    Ok(())
                } else {
                    Err(CompileError(format!("unbound variable `{name}`")))
                }
            }
        }
    }

    /// A static closure record for a global used as a value.
    fn global_closure(&mut self, name: &str) -> u32 {
        if let Some(&a) = self.global_closures.get(name) {
            return a;
        }
        let label = self.globals[name].clone();
        let addr = self.b.push_static(Word::ZERO, true);
        let idx = ((addr - STATIC_BASE) / 4) as usize;
        self.b.static_code_ref(idx, &label);
        self.b.push_static(Word::ZERO, true); // pad to 8 bytes
        debug_assert_eq!(addr % 8, 0);
        self.global_closures.insert(name.to_string(), addr);
        addr
    }

    /// Emits the software future check of the Encore target: if `r`'s
    /// low bit is set, call the run-time touch service.
    fn sw_check(&mut self, r: Reg) {
        let ok = self.fresh_label("ck");
        // Scratch is the dedicated REG_TMP so checks never clobber a
        // live temporary of the surrounding sequence. Without tag
        // hardware the fast path must extract and compare the low tag
        // bits itself (the Encore has no free ride on fixnums either).
        self.alu(AluOp::And, r, 3, abi::REG_TMP, false);
        self.alu(AluOp::Sub, abi::REG_TMP, 1, abi::REG_TMP, false);
        self.branch(Cond::Ne, &ok);
        self.alu(AluOp::Or, r, 0, abi::REG_SW_TOUCH, false);
        self.b.emit(Instr::RtCall {
            n: abi::RT_TOUCH_SW,
        });
        self.alu(AluOp::Or, abi::REG_SW_TOUCH, 0, r, false);
        self.b.label(&ok);
    }

    /// Makes `r` strict (touched) per the check mode. `tagged_ops`
    /// callers skip this: the tagged instruction itself checks.
    fn touch_reg(&mut self, r: Reg) {
        match self.opts.checks {
            CheckMode::Hardware => self.alu(AluOp::Add, r, 0, r, true),
            CheckMode::Software => self.sw_check(r),
            CheckMode::None => {}
        }
    }

    /// True if strict ALU ops should use tagged instructions.
    fn hw(&self) -> bool {
        self.opts.checks == CheckMode::Hardware
    }

    /// Emits an inline heap allocation of `bytes` (multiple of 8);
    /// base address left raw in `g3`. Clobbers `g1`, `g2`.
    fn alloc(&mut self, bytes: u32) {
        debug_assert_eq!(bytes % 8, 0);
        let retry = self.fresh_label("al");
        let fit = self.fresh_label("alf");
        self.b.label(&retry);
        self.alu(AluOp::Add, abi::REG_HEAP, bytes as i32, T1, false);
        self.alu(AluOp::Sub, abi::REG_HEAP_LIM, T1, T2, false);
        self.branch(Cond::Geu, &fit);
        self.b.emit(Instr::RtCall {
            n: abi::RT_HEAP_MORE,
        });
        self.branch(Cond::Always, &retry);
        self.b.label(&fit);
        self.alu(AluOp::Or, abi::REG_HEAP, 0, T3, false);
        self.alu(AluOp::Or, T1, 0, abi::REG_HEAP, false);
    }

    /// Emits a direct call to a known code label.
    fn emit_direct_call(&mut self, label: &str) {
        self.b.movi_label(label, T1);
        self.b.emit(Instr::Jmpl {
            s1: T1,
            s2: Operand::Imm(0),
            d: LINK,
        });
        self.b.emit(Instr::Nop);
    }

    // -----------------------------------------------------------------
    // Runtime stubs (shared with `april_runtime::abi::entry_stubs_asm`)
    // -----------------------------------------------------------------

    fn emit_stubs(&mut self) {
        // __task_entry: call closure in r0, determine r25 with r1, exit.
        self.b.label(abi::TASK_ENTRY_LABEL);
        self.load(CLO, -2, Reg::G(7));
        self.b.emit(Instr::Jmpl {
            s1: Reg::G(7),
            s2: Operand::Imm(0),
            d: LINK,
        });
        self.b.emit(Instr::Nop);
        self.b.emit(Instr::RtCall {
            n: abi::RT_DETERMINE,
        });
        self.b.emit(Instr::RtCall { n: abi::RT_EXIT });
        // __inline_entry: same but resumes the interrupted frame.
        self.b.label(abi::INLINE_ENTRY_LABEL);
        self.load(CLO, -2, Reg::G(7));
        self.b.emit(Instr::Jmpl {
            s1: Reg::G(7),
            s2: Operand::Imm(0),
            d: LINK,
        });
        self.b.emit(Instr::Nop);
        self.b.emit(Instr::RtCall {
            n: abi::RT_DETERMINE,
        });
        self.b.emit(Instr::RtCall { n: abi::RT_RESUME });
    }

    /// `__make_vector(n, init)`: allocates and fills a vector record
    /// `[length, e0, e1, …]`, tagged `other`.
    fn emit_make_vector(&mut self) {
        self.b.label("__make_vector");
        // bytes = round8((n+1)*4): g1 = untagged n
        self.alu(AluOp::Sra, ACC, 2, T1, false);
        self.alu(AluOp::Add, T1, 2, T2, false);
        self.alu(AluOp::And, T2, -2, T2, false);
        self.alu(AluOp::Sll, T2, 2, T2, false);
        let retry = "mv_retry";
        let fit = "mv_fit";
        self.b.label(retry);
        self.alu(AluOp::Add, abi::REG_HEAP, Operand::Reg(T2), T3, false);
        self.alu(AluOp::Sub, abi::REG_HEAP_LIM, T3, T4, false);
        self.branch(Cond::Geu, fit);
        self.b.emit(Instr::RtCall {
            n: abi::RT_HEAP_MORE,
        });
        self.branch(Cond::Always, retry);
        self.b.label(fit);
        self.alu(AluOp::Or, abi::REG_HEAP, 0, T4, false); // base
        self.alu(AluOp::Or, T3, 0, abi::REG_HEAP, false);
        self.store(ACC, T4, 0); // length (tagged fixnum)
                                // init loop
        self.alu(AluOp::Or, T1, 0, T2, false); // counter
        self.alu(AluOp::Add, T4, 4, T3, false); // element pointer
        self.b.label("mv_loop");
        self.alu(AluOp::Sub, T2, 0, T2, false); // set cc
        self.branch(Cond::Eq, "mv_done");
        self.store(Reg::L(2), T3, 0);
        self.alu(AluOp::Add, T3, 4, T3, false);
        self.alu(AluOp::Sub, T2, 1, T2, false);
        self.branch(Cond::Always, "mv_loop");
        self.b.label("mv_done");
        self.alu(AluOp::Or, T4, 2, ACC, false);
        self.b.emit(Instr::Jmpl {
            s1: LINK,
            s2: Operand::Imm(0),
            d: Reg::ZERO,
        });
        self.b.emit(Instr::Nop);
    }

    // -----------------------------------------------------------------
    // Functions
    // -----------------------------------------------------------------

    fn compile_function(
        &mut self,
        label: &str,
        params: &[String],
        body: &[Expr],
        free: &[String],
    ) -> Result<(), CompileError> {
        if params.len() > MAX_ARGS {
            return Err(CompileError(format!(
                "lambda takes too many parameters at {label}"
            )));
        }
        self.b.label(label);
        let n = params.len() as u32;
        // Prologue: save return address, closure, arguments.
        self.store(LINK, SP, 0);
        self.store(CLO, SP, 4);
        for (i, _) in params.iter().enumerate() {
            self.store(Reg::L(1 + i as u8), SP, 8 + 4 * i as i32);
        }
        self.alu(AluOp::Add, SP, (4 * (2 + n)) as i32, SP, false);

        let mut env: Vec<(String, Binding)> = Vec::new();
        for (i, f) in free.iter().enumerate() {
            env.push((f.clone(), Binding::Free(i)));
        }
        for (i, p) in params.iter().enumerate() {
            env.push((p.clone(), Binding::Slot(2 + i as u32)));
        }
        let mut ctx = Ctx { env, depth: 2 + n };
        for (i, e) in body.iter().enumerate() {
            let tail = i + 1 == body.len();
            self.compile_expr_t(e, &mut ctx, tail)?;
        }
        debug_assert_eq!(ctx.depth, 2 + n, "unbalanced stack in {label}");
        // Epilogue.
        let frame = (4 * ctx.depth) as i32;
        self.load(SP, -frame, LINK);
        self.alu(AluOp::Sub, SP, frame, SP, false);
        self.b.emit(Instr::Jmpl {
            s1: LINK,
            s2: Operand::Imm(0),
            d: Reg::ZERO,
        });
        self.b.emit(Instr::Nop);
        Ok(())
    }

    // -----------------------------------------------------------------
    // Expressions (result in ACC, depth-neutral)
    // -----------------------------------------------------------------

    fn compile_expr(&mut self, e: &Expr, ctx: &mut Ctx) -> Result<(), CompileError> {
        self.compile_expr_t(e, ctx, false)
    }

    /// Compiles `e`; when `tail` is set and `e` ends in a procedure
    /// call, the call reuses the current frame (proper tail calls, so
    /// the recursive loops Mul-T style favors run in constant stack).
    fn compile_expr_t(&mut self, e: &Expr, ctx: &mut Ctx, tail: bool) -> Result<(), CompileError> {
        match e {
            Expr::Int(n) => self.movi(Word::fixnum(*n).0, ACC),
            Expr::Bool(true) => self.movi(abi::truth().0, ACC),
            Expr::Bool(false) => self.movi(abi::falsity().0, ACC),
            Expr::Nil => self.movi(abi::nil().0, ACC),
            Expr::Var(name) => self.load_var(ctx, name, ACC)?,
            Expr::Begin(es) => {
                if es.is_empty() {
                    self.movi(abi::falsity().0, ACC);
                }
                for (i, e) in es.iter().enumerate() {
                    self.compile_expr_t(e, ctx, tail && i + 1 == es.len())?;
                }
            }
            Expr::If(c, t, f) => {
                let lelse = self.fresh_label("else");
                let lend = self.fresh_label("endif");
                self.compile_expr(c, ctx)?;
                self.movi(abi::falsity().0, T1);
                self.alu(AluOp::Sub, ACC, Operand::Reg(T1), T2, false);
                self.branch(Cond::Eq, &lelse);
                self.compile_expr_t(t, ctx, tail)?;
                self.branch(Cond::Always, &lend);
                self.b.label(&lelse);
                self.compile_expr_t(f, ctx, tail)?;
                self.b.label(&lend);
            }
            Expr::And(es) => {
                let lend = self.fresh_label("andend");
                if es.is_empty() {
                    self.movi(abi::truth().0, ACC);
                }
                for (i, e) in es.iter().enumerate() {
                    self.compile_expr(e, ctx)?;
                    if i + 1 < es.len() {
                        self.movi(abi::falsity().0, T1);
                        self.alu(AluOp::Sub, ACC, Operand::Reg(T1), T2, false);
                        self.branch(Cond::Eq, &lend);
                    }
                }
                self.b.label(&lend);
            }
            Expr::Or(es) => {
                let lend = self.fresh_label("orend");
                if es.is_empty() {
                    self.movi(abi::falsity().0, ACC);
                }
                for (i, e) in es.iter().enumerate() {
                    self.compile_expr(e, ctx)?;
                    if i + 1 < es.len() {
                        self.movi(abi::falsity().0, T1);
                        self.alu(AluOp::Sub, ACC, Operand::Reg(T1), T2, false);
                        self.branch(Cond::Ne, &lend);
                    }
                }
                self.b.label(&lend);
            }
            Expr::Let(binds, body) => {
                let base = ctx.env.len();
                for (name, init) in binds {
                    self.compile_expr(init, ctx)?;
                    let slot = ctx.depth;
                    self.push(ctx, ACC);
                    ctx.env.push((name.clone(), Binding::Slot(slot)));
                }
                for (i, e) in body.iter().enumerate() {
                    // A tail call deallocates the whole frame itself,
                    // including these let slots.
                    self.compile_expr_t(e, ctx, tail && i + 1 == body.len())?;
                }
                let k = binds.len() as u32;
                self.alu(AluOp::Sub, SP, (4 * k) as i32, SP, false);
                ctx.depth -= k;
                ctx.env.truncate(base);
            }
            Expr::Lambda(params, body) => {
                self.compile_closure(params.clone(), body.clone(), ctx)?;
            }
            Expr::Call(f, args) => self.compile_call(f, args, ctx, tail)?,
            Expr::Prim(p, args) => self.compile_prim(*p, args, ctx)?,
            Expr::Touch(e) => {
                self.compile_expr(e, ctx)?;
                self.touch_reg(ACC);
            }
            Expr::Future(e, on) => self.compile_future(e, on.as_deref(), ctx)?,
        }
        Ok(())
    }

    /// Builds a closure for `(lambda params body)` into ACC.
    fn compile_closure(
        &mut self,
        params: Vec<String>,
        body: Vec<Expr>,
        ctx: &mut Ctx,
    ) -> Result<(), CompileError> {
        // Free variables: referenced, not bound inside, not global.
        let mut free = BTreeSet::new();
        {
            let mut bound: BTreeSet<String> = params.iter().cloned().collect();
            for e in &body {
                collect_free(e, &mut bound, &mut free);
            }
            free.retain(|v| !self.globals.contains_key(v));
            // Only variables visible here can be captured; anything
            // else is unbound and will error when loaded below.
        }
        let free: Vec<String> = free.into_iter().collect();
        let label = self.fresh_label("lambda");
        let words = 1 + free.len() as u32;
        let bytes = (words * 4).div_ceil(8) * 8;
        self.alloc(bytes); // base in g3
        self.b.movi_label(&label, T2);
        self.store(T2, T3, 0);
        for (i, v) in free.iter().enumerate() {
            self.load_var(ctx, v, T2)?;
            self.store(T2, T3, 4 * (i as i32 + 1));
        }
        self.alu(AluOp::Or, T3, 2, ACC, false);
        self.pending.push(PendingLambda {
            label,
            params,
            body,
            free,
        });
        Ok(())
    }

    fn compile_call(
        &mut self,
        f: &Expr,
        args: &[Expr],
        ctx: &mut Ctx,
        tail: bool,
    ) -> Result<(), CompileError> {
        if args.len() > MAX_ARGS {
            return Err(CompileError("too many arguments in call".into()));
        }
        // Direct call to a known global not shadowed locally.
        let direct = match f {
            Expr::Var(name) if ctx.lookup(name).is_none() => self.globals.get(name).cloned(),
            _ => None,
        };
        let n = args.len();
        if direct.is_none() {
            self.compile_expr(f, ctx)?;
            self.push(ctx, ACC);
        }
        for a in args {
            self.compile_expr(a, ctx)?;
            self.push(ctx, ACC);
        }
        // Pop arguments into r1..rn (they are the top n words).
        for i in 0..n {
            let off = -4 * (n as i32 - i as i32);
            self.load(SP, off, Reg::L(1 + i as u8));
        }
        if tail {
            // Proper tail call: reload the caller's return address,
            // deallocate the entire frame (args, temporaries, let
            // slots, prologue), and jump; the callee's prologue saves
            // our caller's link again. ctx.depth is left untouched —
            // the code after this point in this function is dead.
            let extra: u32 = if direct.is_none() {
                self.load(SP, -4 * (n as i32 + 1), CLO);
                1
            } else {
                0
            };
            // ctx.depth already counts the pushed args (and closure).
            let depth_now = ctx.depth;
            self.load(SP, -4 * depth_now as i32, LINK);
            self.alu(AluOp::Sub, SP, (4 * depth_now) as i32, SP, false);
            ctx.depth -= n as u32 + extra;
            match direct {
                Some(label) => {
                    self.b.movi_label(&label, T1);
                }
                None => {
                    self.touch_reg(CLO);
                    self.load(CLO, -2, T1);
                }
            }
            self.b.emit(Instr::Jmpl {
                s1: T1,
                s2: Operand::Imm(0),
                d: Reg::ZERO,
            });
            self.b.emit(Instr::Nop);
            return Ok(());
        }
        match direct {
            Some(label) => {
                self.alu(AluOp::Sub, SP, 4 * n as i32, SP, false);
                ctx.depth -= n as u32;
                self.emit_direct_call(&label);
            }
            None => {
                self.load(SP, -4 * (n as i32 + 1), CLO);
                self.alu(AluOp::Sub, SP, 4 * (n as i32 + 1), SP, false);
                ctx.depth -= n as u32 + 1;
                self.touch_reg(CLO); // calling a future resolves it
                self.load(CLO, -2, T1);
                self.b.emit(Instr::Jmpl {
                    s1: T1,
                    s2: Operand::Imm(0),
                    d: LINK,
                });
                self.b.emit(Instr::Nop);
            }
        }
        Ok(())
    }

    fn compile_future(
        &mut self,
        e: &Expr,
        on: Option<&Expr>,
        ctx: &mut Ctx,
    ) -> Result<(), CompileError> {
        if self.opts.future_mode == FutureMode::None {
            // Sequential: evaluate the placement expression for effect,
            // then the body in place.
            if let Some(node) = on {
                self.compile_expr(node, ctx)?;
            }
            return self.compile_expr(e, ctx);
        }
        if let Some(node) = on {
            self.compile_expr(node, ctx)?;
            self.push(ctx, ACC);
        }
        // Thunk closure for the body.
        self.compile_closure(Vec::new(), vec![e.clone()], ctx)?;
        if on.is_some() {
            self.pop(ctx, Reg::L(2)); // placement node in r2
        }
        let svc = match (self.opts.future_mode, self.opts.checks, on.is_some()) {
            (FutureMode::Lazy, _, _) => abi::RT_LAZY_FUTURE,
            (_, _, true) => abi::RT_FUTURE_ON,
            (_, CheckMode::Software, false) => abi::RT_FUTURE_SW,
            (_, _, false) => abi::RT_FUTURE,
        };
        self.b.emit(Instr::RtCall { n: svc });
        Ok(())
    }

    // -----------------------------------------------------------------
    // Primitives
    // -----------------------------------------------------------------

    /// True for expressions that compile to a pure register load and
    /// can therefore be rematerialized into any register without a
    /// stack round trip.
    fn is_leaf(&self, e: &Expr, ctx: &Ctx) -> bool {
        match e {
            Expr::Int(_) | Expr::Bool(_) | Expr::Nil => true,
            Expr::Var(n) => ctx.lookup(n).is_some() || self.globals.contains_key(n),
            _ => false,
        }
    }

    /// Loads a leaf expression directly into `d`.
    fn load_leaf(&mut self, e: &Expr, ctx: &Ctx, d: Reg) -> Result<(), CompileError> {
        match e {
            Expr::Int(n) => self.movi(Word::fixnum(*n).0, d),
            Expr::Bool(true) => self.movi(abi::truth().0, d),
            Expr::Bool(false) => self.movi(abi::falsity().0, d),
            Expr::Nil => self.movi(abi::nil().0, d),
            Expr::Var(name) => self.load_var(ctx, name, d)?,
            other => unreachable!("not a leaf: {other:?}"),
        }
        Ok(())
    }

    /// Compiles a two-operand primitive's operands: first into `g1`,
    /// second into ACC. Leaf first operands skip the stack round trip.
    fn two_args(&mut self, args: &[Expr], ctx: &mut Ctx) -> Result<(), CompileError> {
        if self.is_leaf(&args[0], ctx) {
            self.compile_expr(&args[1], ctx)?;
            self.load_leaf(&args[0], ctx, T1)?;
        } else {
            self.compile_expr(&args[0], ctx)?;
            self.push(ctx, ACC);
            self.compile_expr(&args[1], ctx)?;
            self.pop(ctx, T1);
        }
        Ok(())
    }

    /// Emits software checks (if enabled) on `g1` and ACC.
    fn sw_check_two(&mut self) {
        if self.opts.checks == CheckMode::Software {
            self.sw_check(T1);
            self.sw_check(ACC);
        }
    }

    fn bool_from_cond(&mut self, cond: Cond) {
        let lt = self.fresh_label("bt");
        let le = self.fresh_label("be");
        self.branch(cond, &lt);
        self.movi(abi::falsity().0, ACC);
        self.branch(Cond::Always, &le);
        self.b.label(&lt);
        self.movi(abi::truth().0, ACC);
        self.b.label(&le);
    }

    fn compile_prim(&mut self, p: Prim, args: &[Expr], ctx: &mut Ctx) -> Result<(), CompileError> {
        match p {
            Prim::Add | Prim::Sub => {
                self.two_args(args, ctx)?;
                self.sw_check_two();
                let op = if p == Prim::Add {
                    AluOp::Add
                } else {
                    AluOp::Sub
                };
                self.alu(op, T1, Operand::Reg(ACC), ACC, self.hw());
            }
            Prim::Mul => {
                self.two_args(args, ctx)?;
                if self.hw() {
                    self.alu(AluOp::Mul, T1, Operand::Reg(ACC), ACC, true);
                } else {
                    self.sw_check_two();
                    self.alu(AluOp::Sra, T1, 2, T1, false);
                    self.alu(AluOp::Mul, T1, Operand::Reg(ACC), ACC, false);
                }
            }
            Prim::Quotient | Prim::Remainder => {
                self.two_args(args, ctx)?;
                let op = if p == Prim::Quotient {
                    AluOp::Div
                } else {
                    AluOp::Rem
                };
                if self.hw() {
                    self.alu(op, T1, Operand::Reg(ACC), ACC, true);
                } else {
                    self.sw_check_two();
                    self.alu(AluOp::Sra, T1, 2, T1, false);
                    self.alu(AluOp::Sra, ACC, 2, ACC, false);
                    self.alu(op, T1, Operand::Reg(ACC), ACC, false);
                    self.alu(AluOp::Sll, ACC, 2, ACC, false);
                }
            }
            Prim::Lt | Prim::Le | Prim::Gt | Prim::Ge | Prim::NumEq | Prim::Eq => {
                self.two_args(args, ctx)?;
                self.sw_check_two();
                self.alu(AluOp::Sub, T1, Operand::Reg(ACC), T2, self.hw());
                let cond = match p {
                    Prim::Lt => Cond::Lt,
                    Prim::Le => Cond::Le,
                    Prim::Gt => Cond::Gt,
                    Prim::Ge => Cond::Ge,
                    _ => Cond::Eq,
                };
                self.bool_from_cond(cond);
            }
            Prim::Not => {
                self.compile_expr(&args[0], ctx)?;
                self.movi(abi::falsity().0, T1);
                self.alu(AluOp::Sub, ACC, Operand::Reg(T1), T2, false);
                self.bool_from_cond(Cond::Eq);
            }
            Prim::Cons => {
                self.two_args(args, ctx)?; // g1 = car, ACC = cdr
                self.push(ctx, ACC);
                self.push(ctx, T1);
                self.alloc(8);
                self.pop(ctx, T1);
                self.pop(ctx, T2);
                self.store(T1, T3, 0);
                self.store(T2, T3, 4);
                self.alu(AluOp::Or, T3, 6, ACC, false);
            }
            Prim::Car | Prim::Cdr => {
                self.compile_expr(&args[0], ctx)?;
                if self.opts.checks == CheckMode::Software {
                    self.sw_check(ACC);
                }
                // The memory instruction's address tag check provides
                // the implicit touch on APRIL (Section 4).
                let off = if p == Prim::Car { -6 } else { -2 };
                self.load(ACC, off, ACC);
            }
            Prim::NullP => {
                self.compile_expr(&args[0], ctx)?;
                self.touch_reg(ACC);
                self.movi(abi::nil().0, T1);
                self.alu(AluOp::Sub, ACC, Operand::Reg(T1), T2, false);
                self.bool_from_cond(Cond::Eq);
            }
            Prim::PairP => {
                self.compile_expr(&args[0], ctx)?;
                self.touch_reg(ACC);
                self.alu(AluOp::And, ACC, 7, T1, false);
                self.alu(AluOp::Sub, T1, 6, T2, false);
                self.bool_from_cond(Cond::Eq);
            }
            Prim::MakeVector => {
                self.compile_expr(&args[0], ctx)?;
                self.push(ctx, ACC);
                self.compile_expr(&args[1], ctx)?;
                self.alu(AluOp::Or, ACC, 0, Reg::L(2), false);
                self.pop(ctx, ACC);
                self.touch_reg(ACC);
                self.emit_direct_call("__make_vector");
            }
            Prim::VectorRef => {
                self.two_args(args, ctx)?; // g1 = v, ACC = i
                self.sw_check_two();
                // A fixnum index is already a byte offset; `other` tag
                // is +2, length word skipped with +4.
                self.alu(AluOp::Add, T1, Operand::Reg(ACC), T2, self.hw());
                self.load(T2, 2, ACC);
            }
            Prim::VectorSet => {
                self.compile_expr(&args[0], ctx)?;
                self.push(ctx, ACC);
                self.compile_expr(&args[1], ctx)?;
                self.push(ctx, ACC);
                self.compile_expr(&args[2], ctx)?;
                self.pop(ctx, T2); // i
                self.pop(ctx, T1); // v
                if self.opts.checks == CheckMode::Software {
                    self.sw_check(T1);
                    self.sw_check(T2);
                }
                self.alu(AluOp::Add, T1, Operand::Reg(T2), T3, self.hw());
                self.store(ACC, T3, 2);
            }
            Prim::VectorLength => {
                self.compile_expr(&args[0], ctx)?;
                if self.opts.checks == CheckMode::Software {
                    self.sw_check(ACC);
                }
                self.load(ACC, -2, ACC);
            }
            Prim::Print => {
                self.compile_expr(&args[0], ctx)?;
                self.b.emit(Instr::RtCall { n: abi::RT_PRINT });
            }
        }
        Ok(())
    }
}

/// Collects variables referenced in `e` that are not in `bound`.
fn collect_free(e: &Expr, bound: &mut BTreeSet<String>, free: &mut BTreeSet<String>) {
    match e {
        Expr::Int(_) | Expr::Bool(_) | Expr::Nil => {}
        Expr::Var(v) => {
            if !bound.contains(v) {
                free.insert(v.clone());
            }
        }
        Expr::If(a, b, c) => {
            collect_free(a, bound, free);
            collect_free(b, bound, free);
            collect_free(c, bound, free);
        }
        Expr::Let(binds, body) => {
            let mut added = Vec::new();
            for (n, init) in binds {
                collect_free(init, bound, free);
                if bound.insert(n.clone()) {
                    added.push(n.clone());
                }
            }
            for b in body {
                collect_free(b, bound, free);
            }
            for n in added {
                bound.remove(&n);
            }
        }
        Expr::Begin(es) | Expr::And(es) | Expr::Or(es) => {
            for e in es {
                collect_free(e, bound, free);
            }
        }
        Expr::Lambda(params, body) => {
            let mut added = Vec::new();
            for p in params {
                if bound.insert(p.clone()) {
                    added.push(p.clone());
                }
            }
            for b in body {
                collect_free(b, bound, free);
            }
            for p in added {
                bound.remove(&p);
            }
        }
        Expr::Call(f, args) => {
            collect_free(f, bound, free);
            for a in args {
                collect_free(a, bound, free);
            }
        }
        Expr::Prim(_, args) => {
            for a in args {
                collect_free(a, bound, free);
            }
        }
        Expr::Future(e, on) => {
            collect_free(e, bound, free);
            if let Some(n) = on {
                collect_free(n, bound, free);
            }
        }
        Expr::Touch(e) => collect_free(e, bound, free),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_arith() {
        let p = compile("(define (main) (+ 1 (* 2 3)))", &CompileOptions::april()).unwrap();
        assert!(p.label("fn_main").is_some());
        assert!(p.len() > 10);
    }

    #[test]
    fn unbound_variable_errors() {
        let e = compile("(define (main) x)", &CompileOptions::april()).unwrap_err();
        assert!(e.0.contains("unbound"));
    }

    #[test]
    fn missing_main_errors() {
        let e = compile("(define (f) 1)", &CompileOptions::april()).unwrap_err();
        assert!(e.0.contains("main"));
    }

    #[test]
    fn software_checks_add_instructions() {
        let src = "(define (main) (+ 1 2))";
        let hw = compile(src, &CompileOptions::april()).unwrap();
        let sw = compile(src, &CompileOptions::encore_seq()).unwrap();
        assert!(
            sw.len() > hw.len(),
            "software checks must cost instructions"
        );
    }

    #[test]
    fn futures_elided_in_seq_mode() {
        let src = "(define (main) (touch (future 5)))";
        let seq = compile(src, &CompileOptions::t_seq()).unwrap();
        let par = compile(src, &CompileOptions::april()).unwrap();
        assert!(par.len() > seq.len());
        // No rtcalls for futures in seq mode.
        let has_future_call = seq
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::RtCall { n } if *n == abi::RT_FUTURE));
        assert!(!has_future_call);
    }

    #[test]
    fn lazy_mode_uses_lazy_service() {
        let src = "(define (main) (touch (future 5)))";
        let p = compile(src, &CompileOptions::april_lazy()).unwrap();
        assert!(p
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::RtCall { n } if *n == abi::RT_LAZY_FUTURE)));
    }
}
