//! The paper's benchmark programs (Section 7), in Mul-T.
//!
//! * `fib` — "the ubiquitous doubly recursive Fibonacci program with
//!   `future`s around each of its recursive calls" — the finest grain.
//! * `factor` — "finds the largest prime factor of each number in a
//!   range of numbers and sums them up", parallelized over the range
//!   by divide and conquer.
//! * `queens` — "finds all solutions to the n-queens chess problem",
//!   futures over the first-row branches.
//! * `speech` — a stand-in for the paper's modified Viterbi lattice
//!   search from the MIT SUMMIT recognizer: a time-synchronous
//!   relaxation over a synthetic layered lattice, futures over the
//!   per-node relaxations within a layer (see DESIGN.md substitution
//!   #3).
//!
//! Each source uses plain `future`s; compiling with
//! [`FutureMode::None`](crate::target::FutureMode::None) elides them,
//! which is how the sequential baselines are produced.

/// Doubly recursive Fibonacci with futures on both recursive calls.
/// The implicit touch happens at the strict `+`.
pub fn fib(n: u32) -> String {
    format!(
        "
(define (fib n)
  (if (< n 2)
      n
      (+ (future (fib (- n 1)))
         (future (fib (- n 2))))))

(define (main) (fib {n}))
"
    )
}

/// Sum of the largest prime factor of every number in `[2, hi]`,
/// divide-and-conquer over the range with a future on the left half.
pub fn factor(hi: u32) -> String {
    format!(
        "
(define (largest-factor n)
  (lpf n 2 1))

;; largest prime factor of n, trying divisors from d up.
(define (lpf n d best)
  (if (> (* d d) n)
      (if (> n 1) n best)
      (if (= (remainder n d) 0)
          (lpf (quotient n d) d d)
          (lpf n (+ d 1) best))))

(define (sum-range lo hi)
  (if (= lo hi)
      (largest-factor lo)
      (let ((mid (quotient (+ lo hi) 2)))
        (+ (future (sum-range lo mid))
           (sum-range (+ mid 1) hi)))))

(define (main) (sum-range 2 {hi}))
"
    )
}

/// n-queens solution count, with a future on every consistent board
/// extension (fine-grain tasks throughout the search tree).
pub fn queens(n: u32) -> String {
    format!(
        "
;; ok? tests column c against the placed queens (list of (col . dist)).
(define (ok? c placed dist)
  (if (null? placed)
      #t
      (let ((q (car placed)))
        (if (= q c)
            #f
            (if (= (- q c) dist)
                #f
                (if (= (- c q) dist)
                    #f
                    (ok? c (cdr placed) (+ dist 1))))))))

(define (count-from row col n placed)
  (if (= col n)
      0
      (+ (if (ok? col placed 1)
             (future (place (+ row 1) n (cons col placed)))
             0)
         (count-from row (+ col 1) n placed))))

(define (place row n placed)
  (if (= row n)
      1
      (count-from row 0 n placed)))

(define (main) (place 0 {n} '()))
"
    )
}

/// Synthetic Viterbi lattice relaxation (the `speech` stand-in):
/// `layers` time steps over `width` lattice nodes; each node's score
/// is the max over predecessors plus a synthetic arc weight. Futures
/// parallelize the per-node relaxations within a layer.
pub fn speech(layers: u32, width: u32) -> String {
    format!(
        "
(define (arc-weight t j k)
  ;; deterministic synthetic weight in [0, 16)
  (remainder (+ (* 7 j) (+ (* 3 k) t)) 16))

(define (max2 a b) (if (> a b) a b))

;; best score reaching node j at layer t, given previous layer vector.
(define (relax prev j k t width best)
  (if (= k width)
      best
      (relax prev j (+ k 1) t width
             (max2 best (+ (vector-ref prev k) (arc-weight t j k))))))

;; compute layer t into vector cur (one future per lattice node).
(define (do-layer prev cur j width t)
  (if (= j width)
      #t
      (begin
        (vector-set! cur j (future (relax prev j 0 t width 0)))
        (do-layer prev cur (+ j 1) width t))))

;; touch every node of a layer and write the resolved values back
;; (barrier before the next time step).
(define (touch-layer cur j width)
  (if (= j width)
      #t
      (begin
        (vector-set! cur j (touch (vector-ref cur j)))
        (touch-layer cur (+ j 1) width))))

(define (run-layers prev t layers width)
  (if (= t layers)
      (best-of prev 0 width 0)
      (let ((cur (make-vector width 0)))
        (do-layer prev cur 0 width t)
        (touch-layer cur 0 width)
        (run-layers cur (+ t 1) layers width))))

(define (best-of v j width best)
  (if (= j width)
      best
      (best-of v (+ j 1) width (max2 best (vector-ref v j)))))

(define (main)
  (run-layers (make-vector {width} 0) 0 {layers} {width}))
"
    )
}

/// A data-level-parallelism library in Mul-T itself — the direction
/// Section 2.2 sketches ("we are augmenting Mul-T with constructs for
/// data-level parallelism"): parallel map and reduction over vectors,
/// built from `future`s with divide-and-conquer grain control, plus
/// `future-on` placement. Prepend to a program that uses `pmap!` or
/// `preduce`.
pub fn data_parallel_lib() -> &'static str {
    "
;; Apply f to v[lo..hi) in parallel, writing results in place.
(define (pmap-range! f v lo hi grain)
  (if (<= (- hi lo) grain)
      (pmap-seq! f v lo hi)
      (let ((mid (quotient (+ lo hi) 2)))
        (let ((left (future (pmap-range! f v lo mid grain))))
          (pmap-range! f v mid hi grain)
          (touch left)))))

(define (pmap-seq! f v lo hi)
  (if (>= lo hi)
      #t
      (begin
        (vector-set! v lo (f (vector-ref v lo)))
        (pmap-seq! f v (+ lo 1) hi))))

;; Parallel in-place map over a whole vector.
(define (pmap! f v grain)
  (pmap-range! f v 0 (vector-length v) grain))

;; Parallel reduction: (op e (op v[0] (op v[1] ...))).
(define (preduce op e v lo hi grain)
  (if (<= (- hi lo) grain)
      (reduce-seq op e v lo hi)
      (let ((mid (quotient (+ lo hi) 2)))
        (let ((left (future (preduce op e v lo mid grain))))
          (op (preduce op e v mid hi grain) (touch left))))))

(define (reduce-seq op e v lo hi)
  (if (>= lo hi)
      e
      (op (vector-ref v lo) (reduce-seq op e v (+ lo 1) hi))))

;; Fill v[i] = (f i) in parallel.
(define (ptabulate! f v lo hi grain)
  (if (<= (- hi lo) grain)
      (tab-seq! f v lo hi)
      (let ((mid (quotient (+ lo hi) 2)))
        (let ((left (future (ptabulate! f v lo mid grain))))
          (ptabulate! f v mid hi grain)
          (touch left)))))

(define (tab-seq! f v lo hi)
  (if (>= lo hi)
      #t
      (begin
        (vector-set! v lo (f lo))
        (tab-seq! f v (+ lo 1) hi))))
"
}

#[cfg(test)]
mod tests {
    use crate::ast::parse_program;

    #[test]
    fn all_benchmarks_parse() {
        for src in [
            super::fib(10),
            super::factor(50),
            super::queens(6),
            super::speech(4, 6),
        ] {
            parse_program(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        }
    }
}
