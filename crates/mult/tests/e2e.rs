//! End-to-end: Mul-T source → APRIL code → run-time system → result.

use april_machine::IdealMachine;
use april_mult::{compile, programs, CompileOptions};
use april_runtime::{RtConfig, Runtime};

const MEM: usize = 96 << 20;
const REGION: u32 = 8 << 20;

fn rt_cfg() -> RtConfig {
    RtConfig {
        region_bytes: REGION,
        max_cycles: 500_000_000,
        ..RtConfig::default()
    }
}

fn run(src: &str, opts: &CompileOptions, nprocs: usize) -> april_runtime::RunResult {
    let prog = compile(src, opts).unwrap_or_else(|e| panic!("compile error: {e}\n{src}"));
    let m = IdealMachine::new(nprocs, MEM, prog);
    let mut rt = Runtime::new(m, rt_cfg());
    rt.run().unwrap_or_else(|e| panic!("run error: {e}\n{src}"))
}

fn eval(src: &str) -> i32 {
    run(src, &CompileOptions::april(), 1)
        .value
        .as_fixnum()
        .expect("fixnum result")
}

#[test]
fn arithmetic() {
    assert_eq!(eval("(define (main) (+ 1 2))"), 3);
    assert_eq!(eval("(define (main) (- 10 42))"), -32);
    assert_eq!(eval("(define (main) (* 6 7))"), 42);
    assert_eq!(eval("(define (main) (quotient 17 5))"), 3);
    assert_eq!(eval("(define (main) (remainder 17 5))"), 2);
    assert_eq!(eval("(define (main) (* -3 (+ 2 2)))"), -12);
}

#[test]
fn comparisons_and_if() {
    assert_eq!(eval("(define (main) (if (< 1 2) 10 20))"), 10);
    assert_eq!(eval("(define (main) (if (> 1 2) 10 20))"), 20);
    assert_eq!(eval("(define (main) (if (= 3 3) 1 0))"), 1);
    assert_eq!(eval("(define (main) (if (<= 3 3) 1 0))"), 1);
    assert_eq!(eval("(define (main) (if (>= 2 3) 1 0))"), 0);
    assert_eq!(eval("(define (main) (if (not #f) 1 0))"), 1);
    assert_eq!(
        eval("(define (main) (if 0 1 2))"),
        1,
        "0 is truthy in Scheme"
    );
}

#[test]
fn and_or_short_circuit() {
    assert_eq!(eval("(define (main) (if (and #t #t) 1 0))"), 1);
    assert_eq!(eval("(define (main) (if (and #t #f) 1 0))"), 0);
    assert_eq!(eval("(define (main) (if (or #f #t) 1 0))"), 1);
    // Short circuit: the divide-by-zero is never evaluated.
    assert_eq!(eval("(define (main) (if (or #t (quotient 1 0)) 1 0))"), 1);
    assert_eq!(eval("(define (main) (if (and #f (quotient 1 0)) 1 0))"), 0);
}

#[test]
fn let_and_shadowing() {
    assert_eq!(eval("(define (main) (let ((x 3) (y 4)) (+ x y)))"), 7);
    assert_eq!(eval("(define (main) (let ((x 1)) (let ((x 2)) x)))"), 2);
    assert_eq!(
        eval("(define (main) (let ((x 1)) (+ (let ((x 2)) x) x)))"),
        3
    );
}

#[test]
fn lists() {
    assert_eq!(eval("(define (main) (car (cons 1 2)))"), 1);
    assert_eq!(eval("(define (main) (cdr (cons 1 2)))"), 2);
    assert_eq!(eval("(define (main) (if (null? '()) 1 0))"), 1);
    assert_eq!(eval("(define (main) (if (null? (cons 1 '())) 1 0))"), 0);
    assert_eq!(eval("(define (main) (if (pair? (cons 1 2)) 1 0))"), 1);
    assert_eq!(eval("(define (main) (if (pair? 5) 1 0))"), 0);
    assert_eq!(
        eval(
            "(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))
             (define (main) (len (cons 1 (cons 2 (cons 3 '())))))"
        ),
        3
    );
}

#[test]
fn vectors() {
    assert_eq!(eval("(define (main) (vector-length (make-vector 5 0)))"), 5);
    assert_eq!(eval("(define (main) (vector-ref (make-vector 5 9) 3))"), 9);
    assert_eq!(
        eval(
            "(define (main)
               (let ((v (make-vector 4 0)))
                 (vector-set! v 2 42)
                 (+ (vector-ref v 2) (vector-ref v 0))))"
        ),
        42
    );
}

#[test]
fn recursion_and_calls() {
    assert_eq!(
        eval("(define (fact n) (if (= n 0) 1 (* n (fact (- n 1))))) (define (main) (fact 10))"),
        3_628_800
    );
    assert_eq!(
        eval("(define (add a b) (+ a b)) (define (main) (add (add 1 2) (add 3 4)))"),
        10
    );
}

#[test]
fn lambdas_and_closures() {
    assert_eq!(eval("(define (main) ((lambda (x) (* x x)) 7))"), 49);
    assert_eq!(
        eval("(define (main) (let ((k 10)) ((lambda (x) (+ x k)) 5)))"),
        15,
        "free variable capture"
    );
    assert_eq!(
        eval(
            "(define (make-adder n) (lambda (x) (+ x n)))
             (define (main) ((make-adder 3) 4))"
        ),
        7,
        "closure escapes its creator"
    );
    assert_eq!(
        eval(
            "(define (twice f x) (f (f x)))
             (define (inc x) (+ x 1))
             (define (main) (twice inc 5))"
        ),
        7,
        "global used as a value"
    );
}

#[test]
fn eager_futures_on_one_and_four_processors() {
    let src = programs::fib(10);
    for procs in [1, 4] {
        let r = run(&src, &CompileOptions::april(), procs);
        assert_eq!(r.value.as_fixnum(), Some(55), "fib(10) on {procs} procs");
        assert!(r.sched.threads_created > 0);
    }
}

#[test]
fn lazy_futures_match_eager_results() {
    let src = programs::fib(10);
    let eager = run(&src, &CompileOptions::april(), 2);
    let lazy = run(&src, &CompileOptions::april_lazy(), 2);
    assert_eq!(eager.value, lazy.value);
    assert!(lazy.sched.lazy_created > 0);
    assert!(
        lazy.sched.threads_created < eager.sched.threads_created,
        "lazy must create fewer threads ({} vs {})",
        lazy.sched.threads_created,
        eager.sched.threads_created
    );
}

#[test]
fn encore_software_checks_compute_same_values() {
    let src = programs::fib(9);
    let april = run(&src, &CompileOptions::april(), 2);
    let encore = run(&src, &CompileOptions::encore(), 2);
    assert_eq!(april.value.as_fixnum(), Some(34));
    assert_eq!(encore.value.as_fixnum(), Some(34));
    assert!(
        encore.total.instructions > april.total.instructions,
        "software future detection costs instructions"
    );
}

#[test]
fn sequential_modes_elide_futures() {
    let src = programs::fib(10);
    let t = run(&src, &CompileOptions::t_seq(), 1);
    assert_eq!(t.value.as_fixnum(), Some(55));
    assert_eq!(t.sched.threads_created, 0);
    assert_eq!(t.sched.lazy_created, 0);
}

fn largest_prime_factor(mut n: u32) -> u32 {
    let mut best = 1;
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            best = d;
            n /= d;
        } else {
            d += 1;
        }
    }
    if n > 1 {
        n
    } else {
        best
    }
}

#[test]
fn factor_benchmark_is_correct() {
    let expect: u32 = (2..=40).map(largest_prime_factor).sum();
    let src = programs::factor(40);
    let r = run(&src, &CompileOptions::april(), 4);
    assert_eq!(r.value.as_fixnum(), Some(expect as i32));
    let seq = run(&src, &CompileOptions::t_seq(), 1);
    assert_eq!(seq.value.as_fixnum(), Some(expect as i32));
}

#[test]
fn queens_benchmark_is_correct() {
    // 6-queens has 4 solutions.
    let src = programs::queens(6);
    let r = run(&src, &CompileOptions::april(), 4);
    assert_eq!(r.value.as_fixnum(), Some(4));
    let lazy = run(&src, &CompileOptions::april_lazy(), 4);
    assert_eq!(lazy.value.as_fixnum(), Some(4));
}

#[test]
fn speech_benchmark_agrees_across_targets() {
    let src = programs::speech(4, 6);
    let seq = run(&src, &CompileOptions::t_seq(), 1);
    let par = run(&src, &CompileOptions::april(), 4);
    let lazy = run(&src, &CompileOptions::april_lazy(), 2);
    let enc = run(&src, &CompileOptions::encore(), 2);
    assert_eq!(seq.value, par.value);
    assert_eq!(seq.value, lazy.value);
    assert_eq!(seq.value, enc.value);
    assert!(seq.value.as_fixnum().unwrap() > 0);
}

#[test]
fn parallel_speedup_on_fib() {
    let src = programs::fib(13);
    let p1 = run(&src, &CompileOptions::april(), 1);
    let p8 = run(&src, &CompileOptions::april(), 8);
    assert_eq!(p1.value, p8.value);
    let speedup = p1.cycles as f64 / p8.cycles as f64;
    assert!(speedup > 3.0, "8 procs gave only {speedup:.2}x over 1");
}

#[test]
fn future_on_places_tasks() {
    let src = "
        (define (work n) (* n n))
        (define (main) (+ (touch (future-on 1 (work 5)))
                          (touch (future-on 2 (work 6)))))";
    let r = run(src, &CompileOptions::april(), 4);
    assert_eq!(r.value.as_fixnum(), Some(61));
}

#[test]
fn print_collects_output() {
    let src = "(define (main) (begin (print 1) (print 2) (print 3) 0))";
    let r = run(src, &CompileOptions::april(), 1);
    let vals: Vec<i32> = r.prints.iter().map(|w| w.as_fixnum().unwrap()).collect();
    assert_eq!(vals, vec![1, 2, 3]);
}

#[test]
fn deterministic_cycle_counts() {
    let src = programs::fib(9);
    let a = run(&src, &CompileOptions::april(), 4);
    let b = run(&src, &CompileOptions::april(), 4);
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn tail_calls_run_in_constant_stack() {
    // 100k-deep tail recursion would smash any fixed stack without
    // proper tail calls; with them it is a loop.
    let src = "
        (define (count n acc)
          (if (= n 0) acc (count (- n 1) (+ acc 1))))
        (define (main) (count 100000 0))";
    let r = run(src, &CompileOptions::april(), 1);
    assert_eq!(r.value.as_fixnum(), Some(100_000));
}

#[test]
fn mutual_tail_recursion() {
    let src = "
        (define (even? n) (if (= n 0) #t (odd? (- n 1))))
        (define (odd? n) (if (= n 0) #f (even? (- n 1))))
        (define (main) (if (even? 50001) 1 0))";
    assert_eq!(
        run(src, &CompileOptions::april(), 1).value.as_fixnum(),
        Some(0)
    );
}

#[test]
fn tail_call_through_closure() {
    let src = "
        (define (loop f n) (if (= n 0) 99 (f f (- n 1))))
        (define (main)
          (let ((g (lambda (self n) (if (= n 0) 42 (self self (- n 1))))))
            (g g 60000)))";
    assert_eq!(
        run(src, &CompileOptions::april(), 1).value.as_fixnum(),
        Some(42)
    );
}

#[test]
fn tail_call_inside_let_deallocates_bindings() {
    let src = "
        (define (go n acc)
          (if (= n 0)
              acc
              (let ((x (+ acc 2)) (y 1))
                (go (- n 1) (- x y)))))
        (define (main) (go 50000 0))";
    assert_eq!(
        run(src, &CompileOptions::april(), 1).value.as_fixnum(),
        Some(50_000)
    );
}

#[test]
fn data_parallel_map_and_reduce() {
    // Square 0..32 in parallel, then sum in parallel.
    let src = format!(
        "{lib}
        (define (sq x) (* x x))
        (define (add a b) (+ a b))
        (define (main)
          (let ((v (make-vector 32 0)))
            (ptabulate! (lambda (i) i) v 0 32 4)
            (pmap! sq v 4)
            (preduce add 0 v 0 32 4)))",
        lib = programs::data_parallel_lib()
    );
    let expect: i32 = (0..32).map(|i| i * i).sum();
    for procs in [1, 4] {
        let r = run(&src, &CompileOptions::april(), procs);
        assert_eq!(r.value.as_fixnum(), Some(expect), "{procs} procs");
        assert!(r.sched.threads_created > 0, "must actually parallelize");
    }
    // Lazy mode agrees and inlines most of the tree on 1 proc.
    let lazy = run(&src, &CompileOptions::april_lazy(), 1);
    assert_eq!(lazy.value.as_fixnum(), Some(expect));
    assert!(lazy.sched.inline_evals > 0);
}

#[test]
fn data_parallel_grain_controls_task_count() {
    let mk = |grain: u32| {
        format!(
            "{lib}
            (define (add a b) (+ a b))
            (define (main)
              (let ((v (make-vector 64 1)))
                (preduce add 0 v 0 64 {grain})))",
            lib = programs::data_parallel_lib()
        )
    };
    let fine = run(&mk(2), &CompileOptions::april(), 4);
    let coarse = run(&mk(32), &CompileOptions::april(), 4);
    assert_eq!(fine.value.as_fixnum(), Some(64));
    assert_eq!(coarse.value.as_fixnum(), Some(64));
    assert!(
        fine.sched.threads_created > coarse.sched.threads_created,
        "finer grain must spawn more tasks ({} vs {})",
        fine.sched.threads_created,
        coarse.sched.threads_created
    );
}
