//! Differential testing: random Mul-T programs are evaluated by the
//! reference interpreter and by the full pipeline (compiler → run-time
//! → machine) under every compilation target and several processor
//! counts. Any divergence is a bug in the compiler, the run-time
//! system, the processor, or the oracle.

use april_machine::IdealMachine;
use april_mult::interp::{interpret, Value};
use april_mult::{compile, CompileOptions};
use april_runtime::{RtConfig, Runtime};
use april_util::Rng;

/// Generates a deterministic random integer-valued expression using
/// `nvars` in-scope integer variables `v0..`.
fn gen_expr(rng: &mut Rng, depth: u32, nvars: u32) -> String {
    if depth == 0 {
        return if nvars > 0 && rng.gen_bool(0.5) {
            format!("v{}", rng.gen_below(nvars as u64))
        } else {
            format!("{}", rng.gen_range(-9, 100))
        };
    }
    let d = depth - 1;
    match rng.gen_below(14) {
        0 => format!(
            "(+ {} {})",
            gen_expr(rng, d, nvars),
            gen_expr(rng, d, nvars)
        ),
        1 => format!(
            "(- {} {})",
            gen_expr(rng, d, nvars),
            gen_expr(rng, d, nvars)
        ),
        2 => format!(
            "(* {} {})",
            gen_expr(rng, d, nvars),
            gen_expr(rng, d, nvars)
        ),
        3 => format!(
            "(quotient {} {})",
            gen_expr(rng, d, nvars),
            rng.gen_range(1, 9)
        ),
        4 => format!(
            "(remainder {} {})",
            gen_expr(rng, d, nvars),
            rng.gen_range(1, 9)
        ),
        5 => {
            let cmp = ["<", "<=", ">", ">=", "="][rng.gen_index(5)];
            format!(
                "(if ({cmp} {} {}) {} {})",
                gen_expr(rng, d, nvars),
                gen_expr(rng, d, nvars),
                gen_expr(rng, d, nvars),
                gen_expr(rng, d, nvars)
            )
        }
        6 => format!(
            "(let ((v{nvars} {})) {})",
            gen_expr(rng, d, nvars),
            gen_expr(rng, d, nvars + 1)
        ),
        7 => format!(
            "((lambda (v{nvars}) {}) {})",
            gen_expr(rng, d, nvars + 1),
            gen_expr(rng, d, nvars)
        ),
        8 => format!(
            "(car (cons {} {}))",
            gen_expr(rng, d, nvars),
            gen_expr(rng, d, nvars)
        ),
        9 => format!(
            "(cdr (cons {} {}))",
            gen_expr(rng, d, nvars),
            gen_expr(rng, d, nvars)
        ),
        10 => {
            let i = rng.gen_below(4);
            format!(
                "(vector-ref (make-vector 4 {}) {i})",
                gen_expr(rng, d, nvars)
            )
        }
        11 => format!("(touch (future {}))", gen_expr(rng, d, nvars)),
        12 => format!(
            "(begin {} {})",
            gen_expr(rng, d, nvars),
            gen_expr(rng, d, nvars)
        ),
        _ => format!(
            "(if (not (= {} 0)) {} {})",
            gen_expr(rng, d, nvars),
            gen_expr(rng, d, nvars),
            gen_expr(rng, d, nvars)
        ),
    }
}

fn run_pipeline(src: &str, opts: &CompileOptions, procs: usize) -> i32 {
    let prog = compile(src, opts).unwrap_or_else(|e| panic!("compile: {e}\n{src}"));
    let m = IdealMachine::new(procs, procs * (4 << 20), prog);
    let mut rt = Runtime::new(
        m,
        RtConfig {
            region_bytes: 4 << 20,
            max_cycles: 100_000_000,
            ..RtConfig::default()
        },
    );
    let r = rt.run().unwrap_or_else(|e| panic!("run: {e}\n{src}"));
    r.value
        .as_fixnum()
        .unwrap_or_else(|| panic!("non-fixnum result {} for\n{src}", r.value))
}

/// Every target and machine size computes what the oracle computes.
#[test]
fn all_targets_match_the_oracle() {
    for case in 0..48u64 {
        let mut rng = Rng::seed_from(0xd1ff ^ case);
        let expr = gen_expr(&mut rng, 4, 0);
        let src = format!("(define (main) {expr})");
        let expected = match interpret(&src) {
            Ok(Value::Int(n)) => n,
            Ok(other) => panic!("oracle produced non-int {other} for\n{src}"),
            Err(e) => panic!("oracle failed ({e}) on generated program\n{src}"),
        };
        for (label, opts, procs) in [
            ("t_seq/1", CompileOptions::t_seq(), 1),
            ("april/1", CompileOptions::april(), 1),
            ("april/3", CompileOptions::april(), 3),
            ("lazy/2", CompileOptions::april_lazy(), 2),
            ("encore/2", CompileOptions::encore(), 2),
        ] {
            let got = run_pipeline(&src, &opts, procs);
            assert_eq!(
                got, expected,
                "target {label} diverged from oracle on\n{src}"
            );
        }
    }
}

/// Deeper, future-heavy expressions on more processors.
#[test]
fn future_heavy_expressions_are_deterministic() {
    for case in 0..48u64 {
        let mut rng = Rng::seed_from(0xfu64 ^ (case << 8));
        // Wrap three futures around independent subtrees and join them.
        let a = gen_expr(&mut rng, 3, 0);
        let b = gen_expr(&mut rng, 3, 0);
        let c = gen_expr(&mut rng, 3, 0);
        let src = format!("(define (main) (+ (future {a}) (+ (future {b}) (future {c}))))");
        let expected = match interpret(&src) {
            Ok(Value::Int(n)) => n,
            other => panic!("oracle: {other:?} on\n{src}"),
        };
        let eager = run_pipeline(&src, &CompileOptions::april(), 4);
        let lazy = run_pipeline(&src, &CompileOptions::april_lazy(), 4);
        assert_eq!(eager, expected);
        assert_eq!(lazy, expected);
    }
}
