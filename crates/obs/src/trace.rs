//! The merged, canonically ordered event stream.

use crate::event::{lane_component, lane_node, Component, Event};
use crate::json::JsonWriter;
use crate::probe::Probe;

/// A machine-wide trace assembled from every component's [`Probe`].
///
/// Events are held in canonical `(cycle, lane, seq)` order after
/// [`Trace::sort`]. Because each lane's stream, sampling decisions,
/// and ring eviction are deterministic (see the crate docs), the
/// sorted trace is identical across the lockstep, event-driven, and
/// parallel schedulers once [`Trace::retain_semantic`] has dropped the
/// scheduler-internal meta lane.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<Event>,
    emitted: u64,
    sampled_out: u64,
    overwritten: u64,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends every retained event of `probe`, accumulating its
    /// emission accounting.
    pub fn push_probe(&mut self, probe: &Probe) {
        self.events.extend(probe.events().copied());
        self.emitted += probe.emitted();
        self.sampled_out += probe.sampled_out();
        self.overwritten += probe.overwritten();
    }

    /// Sorts into canonical `(cycle, lane, seq)` order. Call once after
    /// the last `push_probe`.
    pub fn sort(&mut self) {
        self.events.sort_unstable_by_key(Event::key);
    }

    /// Drops scheduler-internal events ([`Component::Meta`] lanes:
    /// window barriers, watchdog arming/firing), leaving only events
    /// that describe the simulated machine. The result is what the
    /// cross-scheduler determinism contract covers.
    pub fn retain_semantic(&mut self) {
        self.events
            .retain(|e| lane_component(e.lane) != Component::Meta);
    }

    /// The events, in insertion order (canonical order after
    /// [`Trace::sort`]).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Total emissions across all pushed probes, including sampled-out
    /// events.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Emissions discarded by sampling.
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    /// Sampled events lost to ring eviction.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Exports as JSON Lines: one compact JSON object per event, in
    /// current order. Byte-identical for identical traces.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for e in &self.events {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.key("cycle");
            w.u64_value(e.cycle);
            w.key("comp");
            w.str_value(lane_component(e.lane).name());
            w.key("node");
            w.u64_value(lane_node(e.lane) as u64);
            w.key("seq");
            w.u64_value(e.seq);
            w.key("kind");
            w.str_value(e.kind.name());
            w.key("a");
            w.u64_value(e.a);
            w.key("b");
            w.u64_value(e.b);
            w.end_object();
            out.push_str(&w.finish());
            out.push('\n');
        }
        out
    }

    /// Exports as Chrome `trace_event` JSON (the object form,
    /// `{"traceEvents":[...]}`), loadable in chrome://tracing and
    /// Perfetto. Each event becomes an instant event with `ts` = cycle
    /// (microsecond slot reused as a cycle count), `pid` = node and
    /// `tid` = component, so the viewer groups rows by node and
    /// component.
    pub fn to_chrome_trace(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("displayTimeUnit");
        w.str_value("ns");
        w.key("traceEvents");
        w.begin_array();
        for e in &self.events {
            let comp = lane_component(e.lane);
            w.begin_object();
            w.key("name");
            w.str_value(e.kind.name());
            w.key("ph");
            w.str_value("i");
            w.key("ts");
            w.u64_value(e.cycle);
            w.key("pid");
            w.u64_value(lane_node(e.lane) as u64);
            w.key("tid");
            w.u64_value(comp as u64);
            w.key("s");
            w.str_value("t");
            w.key("args");
            w.begin_object();
            w.key("comp");
            w.str_value(comp.name());
            w.key("seq");
            w.u64_value(e.seq);
            w.key("a");
            w.u64_value(e.a);
            w.key("b");
            w.u64_value(e.b);
            w.end_object();
            w.end_object();
        }
        // Name the component rows once per (node, component) pair seen.
        let mut pairs: Vec<(u32, Component)> = self
            .events
            .iter()
            .map(|e| (lane_node(e.lane), lane_component(e.lane)))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        for (node, comp) in pairs {
            w.begin_object();
            w.key("name");
            w.str_value("thread_name");
            w.key("ph");
            w.str_value("M");
            w.key("pid");
            w.u64_value(node as u64);
            w.key("tid");
            w.u64_value(comp as u64);
            w.key("args");
            w.begin_object();
            w.key("name");
            w.str_value(comp.name());
            w.end_object();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{lane, EventKind};
    use crate::json::validate_json;
    use crate::probe::TraceConfig;

    fn probe_with(lane_id: u32, cycles: &[u64]) -> Probe {
        let mut p = Probe::new(lane_id, TraceConfig::default());
        for &c in cycles {
            p.emit(c, EventKind::NetHop, c, 0);
        }
        p
    }

    #[test]
    fn sort_is_canonical_regardless_of_push_order() {
        let a = probe_with(lane(Component::Cpu, 0), &[5, 9]);
        let b = probe_with(lane(Component::Net, 0), &[1, 9]);
        let mut t1 = Trace::new();
        t1.push_probe(&a);
        t1.push_probe(&b);
        t1.sort();
        let mut t2 = Trace::new();
        t2.push_probe(&b);
        t2.push_probe(&a);
        t2.sort();
        assert_eq!(t1.events(), t2.events());
        let keys: Vec<_> = t1.events().iter().map(Event::key).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn retain_semantic_drops_meta_lanes() {
        let meta = probe_with(lane(Component::Meta, 0), &[1]);
        let cpu = probe_with(lane(Component::Cpu, 0), &[2]);
        let mut t = Trace::new();
        t.push_probe(&meta);
        t.push_probe(&cpu);
        t.retain_semantic();
        assert_eq!(t.events().len(), 1);
        assert_eq!(lane_component(t.events()[0].lane), Component::Cpu);
    }

    #[test]
    fn exports_are_valid_json() {
        let p = probe_with(lane(Component::Ctl, 3), &[1, 2, 3]);
        let mut t = Trace::new();
        t.push_probe(&p);
        t.sort();
        let chrome = t.to_chrome_trace();
        assert!(validate_json(&chrome).is_ok(), "{chrome}");
        for line in t.to_jsonl().lines() {
            assert!(validate_json(line).is_ok(), "{line}");
        }
    }
}
