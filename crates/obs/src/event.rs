//! Structured trace events and lane encoding.

/// The component a lane belongs to. Together with a node index it
/// forms a [`lane`] id; each lane carries one deterministic event
/// stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Component {
    /// An APRIL processor (traps, context switches, synchronization
    /// waits).
    Cpu = 0,
    /// A requester-side cache controller (misses, NACKs,
    /// retransmissions).
    Ctl = 1,
    /// A home-side directory (protocol transitions, NACKs,
    /// retransmissions).
    Dir = 2,
    /// The run-time software system (thread spawn/block/resume, lazy
    /// task creation).
    Runtime = 3,
    /// The interconnection network (hops, drops, duplicates, delays,
    /// outage stalls). A single lane; the node field is 0.
    Net = 4,
    /// Scheduler-internal events (window barriers, watchdog arming and
    /// firing). Excluded from the cross-scheduler determinism contract
    /// — they describe the scheduler, not the simulated machine.
    Meta = 5,
}

impl Component {
    /// Short lower-case name used in exports (`"cpu"`, `"net"`, …).
    pub fn name(self) -> &'static str {
        match self {
            Component::Cpu => "cpu",
            Component::Ctl => "ctl",
            Component::Dir => "dir",
            Component::Runtime => "rt",
            Component::Net => "net",
            Component::Meta => "meta",
        }
    }

    fn from_bits(bits: u32) -> Component {
        match bits {
            0 => Component::Cpu,
            1 => Component::Ctl,
            2 => Component::Dir,
            3 => Component::Runtime,
            4 => Component::Net,
            _ => Component::Meta,
        }
    }
}

/// Packs a component and node index into a lane id. The node index
/// must fit in 24 bits (16M nodes — far beyond any simulated machine).
pub const fn lane(comp: Component, node: u32) -> u32 {
    ((comp as u32) << 24) | (node & 0x00ff_ffff)
}

/// The component of a lane id.
pub fn lane_component(lane: u32) -> Component {
    Component::from_bits(lane >> 24)
}

/// The node index of a lane id.
pub const fn lane_node(lane: u32) -> u32 {
    lane & 0x00ff_ffff
}

/// What happened. The payload registers `a`/`b` carry kind-specific
/// detail (addresses, packet ids, thread ids); the full schema is
/// documented in DESIGN.md §10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A processor took a trap other than full/empty or future touch.
    /// `a` = trap code, `b` = faulting address or service number.
    TrapTaken = 0,
    /// The run-time performed a context switch on this processor.
    ContextSwitch = 1,
    /// A full/empty synchronization fault. `a` = address, `b` = 1 for
    /// a store.
    FullEmptyWait = 2,
    /// A future touch (strict operand or address tag). `a` = register
    /// index.
    FutureTouch = 3,
    /// A cache miss. `a` = block address, `b` = 0 for a local fill,
    /// 1 for a remote transaction.
    CacheMiss = 4,
    /// The controller received a NACK from an overloaded home.
    /// `a` = block address.
    NackRecv = 5,
    /// A protocol message was retransmitted (controller request or
    /// directory demand). `a` = block address, `b` = retry count.
    Retransmit = 6,
    /// A directory entry changed protocol state. `a` = block address,
    /// `b` = encoded transition (see DESIGN.md §10).
    DirTransition = 7,
    /// The directory NACKed a request (waiter queue full).
    /// `a` = block address, `b` = requester.
    DirNack = 8,
    /// A packet header crossed one channel. `a` = packet id,
    /// `b` = channel source node.
    NetHop = 9,
    /// A packet was dropped by fault injection. `a` = packet id.
    NetDrop = 10,
    /// A packet was duplicated by fault injection. `a` = original id,
    /// `b` = duplicate id.
    NetDup = 11,
    /// A packet crossing was delayed by fault injection.
    /// `a` = packet id, `b` = extra cycles.
    NetDelay = 12,
    /// A packet crossing stalled on a link outage. `a` = packet id,
    /// `b` = cycle the outage ends.
    NetOutage = 13,
    /// A conservative-window barrier completed (parallel scheduler
    /// only; [`Component::Meta`]). `a` = window start, `b` = window
    /// end (exclusive).
    WindowBarrier = 14,
    /// The forward-progress watchdog re-armed after observing
    /// progress ([`Component::Meta`]). `a` = new deadline.
    WatchdogArmed = 15,
    /// The forward-progress watchdog fired ([`Component::Meta`]).
    /// `a` = firing cycle.
    WatchdogFired = 16,
    /// The run-time created a thread. `a` = thread id, `b` = entry pc.
    ThreadSpawn = 17,
    /// A thread blocked on an unresolved future or full/empty wait.
    /// `a` = thread id, `b` = address.
    ThreadBlock = 18,
    /// A blocked thread was made runnable again. `a` = thread id,
    /// `b` = address.
    ThreadResume = 19,
    /// A lazy future (deferred task) was created. `a` = future
    /// address, `b` = owner node.
    LazyTask = 20,
}

impl EventKind {
    /// Short stable name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TrapTaken => "trap",
            EventKind::ContextSwitch => "context_switch",
            EventKind::FullEmptyWait => "fe_wait",
            EventKind::FutureTouch => "future_touch",
            EventKind::CacheMiss => "cache_miss",
            EventKind::NackRecv => "nack_recv",
            EventKind::Retransmit => "retransmit",
            EventKind::DirTransition => "dir_transition",
            EventKind::DirNack => "dir_nack",
            EventKind::NetHop => "net_hop",
            EventKind::NetDrop => "net_drop",
            EventKind::NetDup => "net_dup",
            EventKind::NetDelay => "net_delay",
            EventKind::NetOutage => "net_outage",
            EventKind::WindowBarrier => "window_barrier",
            EventKind::WatchdogArmed => "watchdog_armed",
            EventKind::WatchdogFired => "watchdog_fired",
            EventKind::ThreadSpawn => "thread_spawn",
            EventKind::ThreadBlock => "thread_block",
            EventKind::ThreadResume => "thread_resume",
            EventKind::LazyTask => "lazy_task",
        }
    }
}

/// One structured trace event.
///
/// `(cycle, lane, seq)` is the canonical sort key: `seq` numbers every
/// emission on its lane (sampled out or not), so the key is unique and
/// the canonical order is identical across schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated cycle at which the event occurred.
    pub cycle: u64,
    /// Lane id (see [`lane`]).
    pub lane: u32,
    /// Emission number on this lane (monotonic, counts unsampled
    /// emissions too).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload register (kind-specific).
    pub a: u64,
    /// Second payload register (kind-specific).
    pub b: u64,
}

impl Event {
    /// The canonical sort key.
    pub fn key(&self) -> (u64, u32, u64) {
        (self.cycle, self.lane, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_roundtrip() {
        for comp in [
            Component::Cpu,
            Component::Ctl,
            Component::Dir,
            Component::Runtime,
            Component::Net,
            Component::Meta,
        ] {
            let l = lane(comp, 1234);
            assert_eq!(lane_component(l), comp);
            assert_eq!(lane_node(l), 1234);
        }
    }

    #[test]
    fn lanes_order_by_component_then_node() {
        assert!(lane(Component::Cpu, 5) < lane(Component::Ctl, 0));
        assert!(lane(Component::Ctl, 1) < lane(Component::Ctl, 2));
    }
}
