//! Structured trace events and lane encoding.

use april_util::wire::{ByteReader, ByteWriter, WireError};

/// The component a lane belongs to. Together with a node index it
/// forms a [`lane`] id; each lane carries one deterministic event
/// stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Component {
    /// An APRIL processor (traps, context switches, synchronization
    /// waits).
    Cpu = 0,
    /// A requester-side cache controller (misses, NACKs,
    /// retransmissions).
    Ctl = 1,
    /// A home-side directory (protocol transitions, NACKs,
    /// retransmissions).
    Dir = 2,
    /// The run-time software system (thread spawn/block/resume, lazy
    /// task creation).
    Runtime = 3,
    /// The interconnection network (hops, drops, duplicates, delays,
    /// outage stalls). A single lane; the node field is 0.
    Net = 4,
    /// Scheduler-internal events (window barriers, watchdog arming and
    /// firing). Excluded from the cross-scheduler determinism contract
    /// — they describe the scheduler, not the simulated machine.
    Meta = 5,
    /// The recovery manager (checkpoints taken, rollbacks, quarantines,
    /// re-executions). Owned by the manager's own probe, outside the
    /// machine's trace: a recovered run's *machine* trace stays
    /// byte-identical to a fresh run from the same checkpoint.
    Recovery = 6,
    /// An open-loop traffic ingress point (request arrivals, retires,
    /// drops at an edge I/O-handler node). One lane per edge node.
    Request = 7,
}

impl Component {
    /// Short lower-case name used in exports (`"cpu"`, `"net"`, …).
    pub fn name(self) -> &'static str {
        match self {
            Component::Cpu => "cpu",
            Component::Ctl => "ctl",
            Component::Dir => "dir",
            Component::Runtime => "rt",
            Component::Net => "net",
            Component::Meta => "meta",
            Component::Recovery => "recovery",
            Component::Request => "request",
        }
    }

    fn from_bits(bits: u32) -> Component {
        match bits {
            0 => Component::Cpu,
            1 => Component::Ctl,
            2 => Component::Dir,
            3 => Component::Runtime,
            4 => Component::Net,
            6 => Component::Recovery,
            7 => Component::Request,
            _ => Component::Meta,
        }
    }
}

/// Packs a component and node index into a lane id. The node index
/// must fit in 24 bits (16M nodes — far beyond any simulated machine).
pub const fn lane(comp: Component, node: u32) -> u32 {
    ((comp as u32) << 24) | (node & 0x00ff_ffff)
}

/// The component of a lane id.
pub fn lane_component(lane: u32) -> Component {
    Component::from_bits(lane >> 24)
}

/// The node index of a lane id.
pub const fn lane_node(lane: u32) -> u32 {
    lane & 0x00ff_ffff
}

/// What happened. The payload registers `a`/`b` carry kind-specific
/// detail (addresses, packet ids, thread ids); the full schema is
/// documented in DESIGN.md §10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A processor took a trap other than full/empty or future touch.
    /// `a` = trap code, `b` = faulting address or service number.
    TrapTaken = 0,
    /// The run-time performed a context switch on this processor.
    ContextSwitch = 1,
    /// A full/empty synchronization fault. `a` = address, `b` = 1 for
    /// a store.
    FullEmptyWait = 2,
    /// A future touch (strict operand or address tag). `a` = register
    /// index.
    FutureTouch = 3,
    /// A cache miss. `a` = block address, `b` = 0 for a local fill,
    /// 1 for a remote transaction.
    CacheMiss = 4,
    /// The controller received a NACK from an overloaded home.
    /// `a` = block address.
    NackRecv = 5,
    /// A protocol message was retransmitted (controller request or
    /// directory demand). `a` = block address, `b` = retry count.
    Retransmit = 6,
    /// A directory entry changed protocol state. `a` = block address,
    /// `b` = encoded transition (see DESIGN.md §10).
    DirTransition = 7,
    /// The directory NACKed a request (waiter queue full).
    /// `a` = block address, `b` = requester.
    DirNack = 8,
    /// A packet header crossed one channel. `a` = packet id,
    /// `b` = channel source node.
    NetHop = 9,
    /// A packet was dropped by fault injection. `a` = packet id.
    NetDrop = 10,
    /// A packet was duplicated by fault injection. `a` = original id,
    /// `b` = duplicate id.
    NetDup = 11,
    /// A packet crossing was delayed by fault injection.
    /// `a` = packet id, `b` = extra cycles.
    NetDelay = 12,
    /// A packet crossing stalled on a link outage. `a` = packet id,
    /// `b` = cycle the outage ends.
    NetOutage = 13,
    /// A conservative-window barrier completed (parallel scheduler
    /// only; [`Component::Meta`]). `a` = window start, `b` = window
    /// end (exclusive).
    WindowBarrier = 14,
    /// The forward-progress watchdog re-armed after observing
    /// progress ([`Component::Meta`]). `a` = new deadline.
    WatchdogArmed = 15,
    /// The forward-progress watchdog fired ([`Component::Meta`]).
    /// `a` = firing cycle.
    WatchdogFired = 16,
    /// The run-time created a thread. `a` = thread id, `b` = entry pc.
    ThreadSpawn = 17,
    /// A thread blocked on an unresolved future or full/empty wait.
    /// `a` = thread id, `b` = address.
    ThreadBlock = 18,
    /// A blocked thread was made runnable again. `a` = thread id,
    /// `b` = address.
    ThreadResume = 19,
    /// A lazy future (deferred task) was created. `a` = future
    /// address, `b` = owner node.
    LazyTask = 20,
    /// A packet was silently swallowed by a fail-stopped link or node.
    /// `a` = packet id, `b` = failure site (channel source node, or the
    /// dead node itself).
    NetFailStop = 21,
    /// A packet had no alive route under the quarantine and was
    /// recorded as a typed dead letter. `a` = packet id,
    /// `b` = unreachable destination.
    NetDeadLetter = 22,
    /// The recovery manager took a periodic checkpoint
    /// ([`Component::Recovery`]). `a` = checkpoint cycle, `b` = ring
    /// occupancy after insertion.
    CheckpointTaken = 23,
    /// The recovery manager rolled the machine back to a checkpoint
    /// ([`Component::Recovery`]). `a` = restored cycle, `b` = recovery
    /// attempt number (1-based).
    Rollback = 24,
    /// The recovery manager quarantined a channel or node
    /// ([`Component::Recovery`]). `a` = encoded target (channel:
    /// `node << 8 | dim << 1 | plus`; node: node index), `b` = 0 for a
    /// channel, 1 for a node.
    QuarantineApplied = 25,
    /// The recovery manager resumed execution after a rollback
    /// ([`Component::Recovery`]). `a` = resume cycle, `b` = the
    /// backed-off watchdog horizon now in force.
    ReExecute = 26,
    /// An open-loop request was injected into an edge node's ingress
    /// ring ([`Component::Request`]). `a` = request id, `b` = ring slot
    /// address.
    RequestArrive = 27,
    /// An open-loop request was retired by the service loop
    /// ([`Component::Request`]). `a` = request id, `b` = birth-to-retire
    /// latency in cycles.
    RequestRetire = 28,
    /// An open-loop request arrived to a full ingress ring and was
    /// dropped ([`Component::Request`]). `a` = request id, `b` = ring
    /// slot address that was still occupied.
    RequestDrop = 29,
}

impl EventKind {
    /// Decodes the wire discriminant written by [`Event::encode`].
    pub(crate) fn from_u8(tag: u8, at: usize) -> Result<EventKind, WireError> {
        Ok(match tag {
            0 => EventKind::TrapTaken,
            1 => EventKind::ContextSwitch,
            2 => EventKind::FullEmptyWait,
            3 => EventKind::FutureTouch,
            4 => EventKind::CacheMiss,
            5 => EventKind::NackRecv,
            6 => EventKind::Retransmit,
            7 => EventKind::DirTransition,
            8 => EventKind::DirNack,
            9 => EventKind::NetHop,
            10 => EventKind::NetDrop,
            11 => EventKind::NetDup,
            12 => EventKind::NetDelay,
            13 => EventKind::NetOutage,
            14 => EventKind::WindowBarrier,
            15 => EventKind::WatchdogArmed,
            16 => EventKind::WatchdogFired,
            17 => EventKind::ThreadSpawn,
            18 => EventKind::ThreadBlock,
            19 => EventKind::ThreadResume,
            20 => EventKind::LazyTask,
            21 => EventKind::NetFailStop,
            22 => EventKind::NetDeadLetter,
            23 => EventKind::CheckpointTaken,
            24 => EventKind::Rollback,
            25 => EventKind::QuarantineApplied,
            26 => EventKind::ReExecute,
            27 => EventKind::RequestArrive,
            28 => EventKind::RequestRetire,
            29 => EventKind::RequestDrop,
            tag => return Err(WireError::BadTag { at, tag }),
        })
    }

    /// Short stable name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TrapTaken => "trap",
            EventKind::ContextSwitch => "context_switch",
            EventKind::FullEmptyWait => "fe_wait",
            EventKind::FutureTouch => "future_touch",
            EventKind::CacheMiss => "cache_miss",
            EventKind::NackRecv => "nack_recv",
            EventKind::Retransmit => "retransmit",
            EventKind::DirTransition => "dir_transition",
            EventKind::DirNack => "dir_nack",
            EventKind::NetHop => "net_hop",
            EventKind::NetDrop => "net_drop",
            EventKind::NetDup => "net_dup",
            EventKind::NetDelay => "net_delay",
            EventKind::NetOutage => "net_outage",
            EventKind::WindowBarrier => "window_barrier",
            EventKind::WatchdogArmed => "watchdog_armed",
            EventKind::WatchdogFired => "watchdog_fired",
            EventKind::ThreadSpawn => "thread_spawn",
            EventKind::ThreadBlock => "thread_block",
            EventKind::ThreadResume => "thread_resume",
            EventKind::LazyTask => "lazy_task",
            EventKind::NetFailStop => "net_fail_stop",
            EventKind::NetDeadLetter => "net_dead_letter",
            EventKind::CheckpointTaken => "checkpoint_taken",
            EventKind::Rollback => "rollback",
            EventKind::QuarantineApplied => "quarantine_applied",
            EventKind::ReExecute => "re_execute",
            EventKind::RequestArrive => "request_arrive",
            EventKind::RequestRetire => "request_retire",
            EventKind::RequestDrop => "request_drop",
        }
    }
}

/// One structured trace event.
///
/// `(cycle, lane, seq)` is the canonical sort key: `seq` numbers every
/// emission on its lane (sampled out or not), so the key is unique and
/// the canonical order is identical across schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated cycle at which the event occurred.
    pub cycle: u64,
    /// Lane id (see [`lane`]).
    pub lane: u32,
    /// Emission number on this lane (monotonic, counts unsampled
    /// emissions too).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload register (kind-specific).
    pub a: u64,
    /// Second payload register (kind-specific).
    pub b: u64,
}

impl Event {
    /// The canonical sort key.
    pub fn key(&self) -> (u64, u32, u64) {
        (self.cycle, self.lane, self.seq)
    }

    /// Appends the event to a snapshot buffer (DESIGN.md §11).
    ///
    /// # Examples
    ///
    /// ```
    /// use april_obs::{lane, Component, Event, EventKind};
    /// use april_util::wire::{ByteReader, ByteWriter};
    ///
    /// let e = Event {
    ///     cycle: 42,
    ///     lane: lane(Component::Cpu, 3),
    ///     seq: 7,
    ///     kind: EventKind::CacheMiss,
    ///     a: 0x100,
    ///     b: 1,
    /// };
    /// let mut w = ByteWriter::new();
    /// e.encode(&mut w);
    /// let bytes = w.finish();
    /// assert_eq!(Event::decode(&mut ByteReader::new(&bytes)).unwrap(), e);
    /// ```
    pub fn encode(&self, w: &mut ByteWriter) {
        w.u64(self.cycle);
        w.u32(self.lane);
        w.u64(self.seq);
        w.u8(self.kind as u8);
        w.u64(self.a);
        w.u64(self.b);
    }

    /// Decodes an event written by [`Event::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Event, WireError> {
        let cycle = r.u64()?;
        let lane = r.u32()?;
        let seq = r.u64()?;
        let at = r.pos();
        let kind = EventKind::from_u8(r.u8()?, at)?;
        let a = r.u64()?;
        let b = r.u64()?;
        Ok(Event {
            cycle,
            lane,
            seq,
            kind,
            a,
            b,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_roundtrip() {
        for comp in [
            Component::Cpu,
            Component::Ctl,
            Component::Dir,
            Component::Runtime,
            Component::Net,
            Component::Meta,
            Component::Recovery,
            Component::Request,
        ] {
            let l = lane(comp, 1234);
            assert_eq!(lane_component(l), comp);
            assert_eq!(lane_node(l), 1234);
        }
    }

    #[test]
    fn lanes_order_by_component_then_node() {
        assert!(lane(Component::Cpu, 5) < lane(Component::Ctl, 0));
        assert!(lane(Component::Ctl, 1) < lane(Component::Ctl, 2));
    }

    #[test]
    fn every_kind_roundtrips_on_the_wire() {
        for tag in 0u8..=29 {
            let kind = EventKind::from_u8(tag, 0).unwrap();
            assert_eq!(kind as u8, tag);
            let e = Event {
                cycle: 1 + tag as u64,
                lane: lane(Component::Dir, tag as u32),
                seq: 99,
                kind,
                a: u64::MAX - tag as u64,
                b: tag as u64,
            };
            let mut w = ByteWriter::new();
            e.encode(&mut w);
            let bytes = w.finish();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(Event::decode(&mut r).unwrap(), e);
            assert!(r.is_empty());
        }
        assert!(EventKind::from_u8(30, 0).is_err());
    }
}
