//! # april-obs — unified observability for the APRIL simulators
//!
//! The paper's entire evaluation (Sections 7–8, Tables 4–7, Figure 9)
//! rests on measurement: per-processor utilization breakdowns,
//! context-switch counts, and cache/network stall attribution. This
//! crate is the one instrumentation substrate every scheduler variant
//! feeds identically:
//!
//! * [`Probe`] — a zero-allocation-on-hot-path, fixed-capacity ring of
//!   structured [`Event`]s owned by each instrumented component (one
//!   *lane* per component per node), with order-independent seeded
//!   sampling.
//! * [`Trace`] — the merged, canonically ordered event stream,
//!   exportable as JSONL and as Chrome `trace_event` JSON for
//!   chrome://tracing.
//! * [`StatsReport`] — a named counter/gauge/histogram registry
//!   snapshot reproducing the paper's utilization and miss-rate
//!   breakdowns, serializable as a single JSON object.
//!
//! # Determinism contract
//!
//! Events carry a `(cycle, lane, seq)` key. Within one lane the
//! simulators emit a deterministic stream (the lockstep, event-driven,
//! and conservative-window parallel schedulers are bit-exact per
//! component), sampling decisions are pure hashes of the event content
//! (never of a stateful generator), and each lane's ring evicts
//! oldest-first within that lane alone. Sorting the merged stream by
//! the key therefore yields the *identical* trace — and identical
//! [`StatsReport`] snapshots — for lockstep, event-driven, and
//! parallel runs at any worker count. Scheduler-internal events
//! ([`Component::Meta`]: window barriers, watchdog arming) are the one
//! exception; they describe the scheduler rather than the simulated
//! machine and are excluded by [`Trace::retain_semantic`].

#![deny(missing_docs)]

mod event;
mod json;
mod probe;
mod report;
mod trace;

pub use event::{lane, lane_component, lane_node, Component, Event, EventKind};
pub use json::{validate_json, JsonWriter};
pub use probe::{Probe, TraceConfig};
pub use report::{Hist, QHist, Section, StatsReport};
pub use trace::Trace;
