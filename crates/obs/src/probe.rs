//! Per-component event recorders.

use crate::event::{Event, EventKind};
use april_util::splitmix64;
use april_util::wire::{ByteReader, ByteWriter, WireError};

/// Tracing configuration shared by every probe of a machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Master switch. A disabled probe's `emit` is a single branch.
    pub enabled: bool,
    /// Ring capacity per lane, in events. Each lane retains its most
    /// recent `capacity` sampled events; older ones are overwritten
    /// (oldest-first *within the lane*, which keeps eviction
    /// deterministic across schedulers). Total trace memory is bounded
    /// by `lanes × capacity × size_of::<Event>()`.
    pub capacity: usize,
    /// Sampling seed. Decisions are pure hashes of `(seed, event)`,
    /// never a stateful generator, so they are independent of
    /// emission interleaving across lanes.
    pub seed: u64,
    /// Fraction of events to record, in `0.0..=1.0`. `1.0` keeps
    /// everything.
    pub sample: f64,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            enabled: true,
            capacity: 4096,
            seed: 0,
            sample: 1.0,
        }
    }
}

impl TraceConfig {
    /// The sampling threshold: an event is kept when its content hash
    /// is at most this value.
    fn threshold(&self) -> u64 {
        if self.sample >= 1.0 {
            u64::MAX
        } else if self.sample <= 0.0 {
            0
        } else {
            (self.sample * (u64::MAX as f64)) as u64
        }
    }
}

/// A fixed-capacity event recorder owned by one instrumented
/// component (one lane).
///
/// `emit` allocates nothing: the ring is sized once at construction
/// and overwrites oldest-first when full. A default-constructed probe
/// is disabled and records nothing.
///
/// # Examples
///
/// ```
/// use april_obs::{lane, Component, EventKind, Probe, TraceConfig};
///
/// let cfg = TraceConfig { capacity: 2, ..TraceConfig::default() };
/// let mut p = Probe::new(lane(Component::Cpu, 0), cfg);
/// for c in 0..5 {
///     p.emit(c, EventKind::ContextSwitch, c, 0);
/// }
/// // Capacity 2: only the two most recent events survive.
/// let kept: Vec<u64> = p.events().map(|e| e.cycle).collect();
/// assert_eq!(kept, vec![3, 4]);
/// assert_eq!(p.emitted(), 5);
/// assert_eq!(p.overwritten(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Probe {
    lane: u32,
    enabled: bool,
    threshold: u64,
    seed: u64,
    ring: Vec<Event>,
    /// Next write position in `ring` once it is full.
    head: usize,
    /// Emissions on this lane so far (sampled out or not).
    seq: u64,
    sampled_out: u64,
    overwritten: u64,
}

impl Probe {
    /// Creates a probe for `lane`. With `cfg.enabled == false` (or a
    /// zero capacity) the probe stays inert and allocates nothing.
    pub fn new(lane: u32, cfg: TraceConfig) -> Probe {
        let enabled = cfg.enabled && cfg.capacity > 0;
        Probe {
            lane,
            enabled,
            threshold: cfg.threshold(),
            seed: cfg.seed,
            ring: if enabled {
                Vec::with_capacity(cfg.capacity)
            } else {
                Vec::new()
            },
            head: 0,
            seq: 0,
            sampled_out: 0,
            overwritten: 0,
        }
    }

    /// This probe's lane id.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Whether the probe records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event. The hot-path cost when disabled is a single
    /// branch; when enabled, a hash and a ring store — no allocation.
    #[inline]
    pub fn emit(&mut self, cycle: u64, kind: EventKind, a: u64, b: u64) {
        if !self.enabled {
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        if self.threshold != u64::MAX {
            // Order-independent sampling: a pure hash of the event
            // content. Identical events on one lane are distinguished
            // by `seq`, so repeated events still sample independently.
            let mut h = self.seed ^ cycle.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            h = splitmix64(h ^ (((self.lane as u64) << 8) | kind as u64));
            h = splitmix64(h ^ seq);
            h = splitmix64(h ^ a ^ b.rotate_left(32));
            if h > self.threshold {
                self.sampled_out += 1;
                return;
            }
        }
        let ev = Event {
            cycle,
            lane: self.lane,
            seq,
            kind,
            a,
            b,
        };
        if self.ring.len() < self.ring.capacity() {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % self.ring.len();
            self.overwritten += 1;
        }
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> + '_ {
        let (newer, older) = self.ring.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    /// Total emissions on this lane (including sampled-out ones).
    pub fn emitted(&self) -> u64 {
        self.seq
    }

    /// Emissions discarded by sampling.
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    /// Sampled events evicted because the ring was full.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Appends the probe's complete state — configuration, counters,
    /// and retained ring contents — to a snapshot buffer
    /// (DESIGN.md §11).
    ///
    /// Snapshotting the full state (not just the ring) matters for
    /// restore-equivalence: `seq` feeds both the sampling hash and the
    /// canonical event key, so a restored probe must resume counting
    /// exactly where the original stopped.
    ///
    /// # Examples
    ///
    /// ```
    /// use april_obs::{lane, Component, EventKind, Probe, TraceConfig};
    /// use april_util::wire::{ByteReader, ByteWriter};
    ///
    /// let mut p = Probe::new(lane(Component::Cpu, 0), TraceConfig::default());
    /// p.emit(3, EventKind::TrapTaken, 1, 2);
    /// let mut w = ByteWriter::new();
    /// p.encode(&mut w);
    /// let bytes = w.finish();
    /// let q = Probe::decode(&mut ByteReader::new(&bytes)).unwrap();
    /// assert_eq!(q.emitted(), 1);
    /// assert_eq!(q.events().count(), 1);
    /// ```
    pub fn encode(&self, w: &mut ByteWriter) {
        w.u32(self.lane);
        w.bool(self.enabled);
        w.u64(self.threshold);
        w.u64(self.seed);
        // The ring's *capacity* (not just its contents) is state: it
        // decides when overwriting starts, so it must survive the
        // round trip for eviction to stay deterministic.
        w.usize(self.ring.capacity());
        w.usize(self.ring.len());
        for ev in &self.ring {
            ev.encode(w);
        }
        w.usize(self.head);
        w.u64(self.seq);
        w.u64(self.sampled_out);
        w.u64(self.overwritten);
    }

    /// Decodes a probe written by [`Probe::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Probe, WireError> {
        let lane = r.u32()?;
        let enabled = r.bool()?;
        let threshold = r.u64()?;
        let seed = r.u64()?;
        let cap = r.usize()?;
        let len = r.usize()?;
        if len > cap {
            return Err(WireError::Corrupt("probe ring longer than its capacity"));
        }
        let mut ring = Vec::with_capacity(cap);
        for _ in 0..len {
            ring.push(Event::decode(r)?);
        }
        let head = r.usize()?;
        if head >= len.max(1) {
            return Err(WireError::Corrupt("probe ring head out of range"));
        }
        Ok(Probe {
            lane,
            enabled,
            threshold,
            seed,
            ring,
            head,
            seq: r.u64()?,
            sampled_out: r.u64()?,
            overwritten: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{lane, Component};

    fn cfg(capacity: usize, sample: f64) -> TraceConfig {
        TraceConfig {
            enabled: true,
            capacity,
            seed: 0x5eed,
            sample,
        }
    }

    #[test]
    fn disabled_probe_records_nothing() {
        let mut p = Probe::default();
        p.emit(1, EventKind::TrapTaken, 2, 3);
        assert_eq!(p.events().count(), 0);
        assert_eq!(p.emitted(), 0);
    }

    #[test]
    fn seq_numbers_every_emission() {
        let mut p = Probe::new(lane(Component::Net, 0), cfg(8, 1.0));
        for c in 0..3 {
            p.emit(c, EventKind::NetHop, c, 0);
        }
        let seqs: Vec<u64> = p.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn sampling_is_a_pure_function_of_content() {
        let run = || {
            let mut p = Probe::new(lane(Component::Cpu, 7), cfg(1024, 0.5));
            for c in 0..1000u64 {
                p.emit(c, EventKind::CacheMiss, c * 4, c % 2);
            }
            (
                p.events().copied().collect::<Vec<_>>(),
                p.sampled_out(),
                p.emitted(),
            )
        };
        let (a, a_out, a_n) = run();
        let (b, b_out, b_n) = run();
        assert_eq!(a, b);
        assert_eq!(a_out, b_out);
        assert_eq!(a_n, b_n);
        assert!(a_out > 300 && a_out < 700, "~half sampled out: {a_out}");
    }

    #[test]
    fn snapshot_roundtrip_resumes_identically() {
        // Two probes that diverge unless *all* state (seq, head,
        // counters, ring capacity) survives the round trip.
        let mut live = Probe::new(lane(Component::Ctl, 3), cfg(4, 0.5));
        for c in 0..37u64 {
            live.emit(c, EventKind::NackRecv, c * 8, c);
        }
        let mut w = ByteWriter::new();
        live.encode(&mut w);
        let bytes = w.finish();
        let mut restored = Probe::decode(&mut ByteReader::new(&bytes)).unwrap();
        for c in 37..100u64 {
            live.emit(c, EventKind::NackRecv, c * 8, c);
            restored.emit(c, EventKind::NackRecv, c * 8, c);
        }
        assert_eq!(
            live.events().copied().collect::<Vec<_>>(),
            restored.events().copied().collect::<Vec<_>>()
        );
        assert_eq!(live.emitted(), restored.emitted());
        assert_eq!(live.sampled_out(), restored.sampled_out());
        assert_eq!(live.overwritten(), restored.overwritten());
    }

    #[test]
    fn corrupt_probe_bytes_are_rejected() {
        let p = Probe::new(lane(Component::Cpu, 1), cfg(2, 1.0));
        let mut w = ByteWriter::new();
        p.encode(&mut w);
        let bytes = w.finish();
        assert!(Probe::decode(&mut ByteReader::new(&bytes[..bytes.len() - 1])).is_err());
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut p = Probe::new(lane(Component::Cpu, 0), cfg(4, 1.0));
        for c in 0..10u64 {
            p.emit(c, EventKind::ContextSwitch, 0, 0);
        }
        let cycles: Vec<u64> = p.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
        assert_eq!(p.overwritten(), 6);
    }
}
