//! The counter / gauge / histogram registry snapshot.

use crate::json::JsonWriter;
use april_util::wire::{ByteReader, ByteWriter, WireError};

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples whose value `v` satisfies
/// `floor(log2(v)) == i - 1` (bucket 0 counts `v == 0`), i.e. bucket
/// boundaries are `0, 1, 2, 4, 8, …`. Recording is branch-light and
/// allocation-free; merging is element-wise, so merged snapshots are
/// independent of recording order.
///
/// # Examples
///
/// ```
/// use april_obs::Hist;
///
/// let mut h = Hist::new();
/// for v in [0, 1, 3, 3, 17] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.sum(), 24);
/// assert_eq!(h.max(), 17);
/// assert_eq!(h.bucket(2), 2); // the two 3s land in [2, 4)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Hist {
        Hist {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Hist {
    /// Creates an empty histogram.
    pub fn new() -> Hist {
        Hist::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let b = (64 - v.leading_zeros()) as usize;
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The count in bucket `i` (samples in `[2^(i-1), 2^i)`; bucket 0
    /// holds zeros).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Element-wise accumulation of `other` into `self`.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Appends the histogram to a snapshot buffer (DESIGN.md §11).
    ///
    /// # Examples
    ///
    /// ```
    /// use april_obs::Hist;
    /// use april_util::wire::{ByteReader, ByteWriter};
    ///
    /// let mut h = Hist::new();
    /// h.record(12);
    /// let mut w = ByteWriter::new();
    /// h.encode(&mut w);
    /// let bytes = w.finish();
    /// assert_eq!(Hist::decode(&mut ByteReader::new(&bytes)).unwrap(), h);
    /// ```
    pub fn encode(&self, w: &mut ByteWriter) {
        for &b in &self.buckets {
            w.u64(b);
        }
        w.u64(self.count);
        w.u64(self.sum);
        w.u64(self.max);
    }

    /// Decodes a histogram written by [`Hist::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Hist, WireError> {
        let mut h = Hist::new();
        for b in h.buckets.iter_mut() {
            *b = r.u64()?;
        }
        h.count = r.u64()?;
        h.sum = r.u64()?;
        h.max = r.u64()?;
        Ok(h)
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("count");
        w.u64_value(self.count);
        w.key("sum");
        w.u64_value(self.sum);
        w.key("max");
        w.u64_value(self.max);
        w.key("mean");
        w.f64_value(self.mean());
        w.key("buckets");
        w.begin_array();
        // Trailing empty buckets are elided for compactness; the
        // boundary sequence 0,1,2,4,… makes index i self-describing.
        let hi = 65 - self.buckets.iter().rev().take_while(|&&c| c == 0).count();
        for &c in &self.buckets[..hi] {
            w.u64_value(c);
        }
        w.end_array();
        w.end_object();
    }
}

/// Sub-bucket count per power-of-two group in a [`QHist`].
const QSUB: usize = 16;
/// Total bucket count of a [`QHist`]: 16 exact buckets for values
/// below 16, then 16 linear sub-buckets per power-of-two group up to
/// `u64::MAX` (groups for exponents 4..=63).
const QBUCKETS: usize = QSUB + 60 * QSUB;

/// A quantile histogram: log2 groups refined by 16 linear sub-buckets,
/// bounding the relative error of any reported quantile by 1/16.
///
/// [`Hist`]'s pure log2 buckets are fine for means and tails-by-decade
/// but far too coarse for p999 latency curves, where a factor-of-two
/// bucket swallows the whole tail. `QHist` records values below 16
/// exactly and everything else into `(exponent, v >> (exponent - 4))`
/// buckets, so [`QHist::quantile`] answers with at most ~6% error.
/// Recording is allocation-free; merging is element-wise and therefore
/// independent of recording order, which is what makes reports built
/// from merged shard snapshots deterministic.
///
/// # Examples
///
/// ```
/// use april_obs::QHist;
///
/// let mut h = QHist::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.quantile(0.50);
/// assert!((470..=530).contains(&p50), "p50 = {p50}");
/// assert_eq!(h.quantile(1.0), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QHist {
    buckets: Box<[u64; QBUCKETS]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for QHist {
    fn default() -> QHist {
        QHist {
            buckets: Box::new([0; QBUCKETS]),
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl QHist {
    /// Creates an empty histogram.
    pub fn new() -> QHist {
        QHist::default()
    }

    /// The bucket index of value `v`.
    #[inline]
    fn index_of(v: u64) -> usize {
        if v < QSUB as u64 {
            v as usize
        } else {
            let top = (63 - v.leading_zeros()) as usize; // >= 4
            (top - 3) * QSUB + ((v >> (top - 4)) & (QSUB as u64 - 1)) as usize
        }
    }

    /// The largest value that lands in bucket `idx` (its reported
    /// representative).
    fn upper_bound(idx: usize) -> u64 {
        if idx < QSUB {
            idx as u64
        } else {
            let top = idx / QSUB + 3;
            let sub = (idx % QSUB) as u64;
            let width = 1u64 << (top - 4);
            ((QSUB as u64 + sub) << (top - 4)) + (width - 1)
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[QHist::index_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound on the
    /// sample at rank `ceil(q * count)`, within 1/16 relative error
    /// (and clamped to the true maximum). Returns 0 on an empty
    /// histogram. Deterministic: a pure function of the recorded
    /// multiset.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return QHist::upper_bound(idx).min(self.max);
            }
        }
        self.max
    }

    /// Element-wise accumulation of `other` into `self`.
    pub fn merge(&mut self, other: &QHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Appends the histogram to a snapshot buffer. Sparse: only
    /// non-empty buckets are written.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.u64(self.count);
        w.u64(self.sum);
        w.u64(self.max);
        let nonzero = self.buckets.iter().filter(|&&c| c != 0).count();
        w.usize(nonzero);
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c != 0 {
                w.u32(idx as u32);
                w.u64(c);
            }
        }
    }

    /// Decodes a histogram written by [`QHist::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<QHist, WireError> {
        let mut h = QHist::new();
        h.count = r.u64()?;
        h.sum = r.u64()?;
        h.max = r.u64()?;
        let nonzero = r.usize()?;
        for _ in 0..nonzero {
            let idx = r.u32()? as usize;
            if idx >= QBUCKETS {
                return Err(WireError::Corrupt("qhist bucket index out of range"));
            }
            h.buckets[idx] = r.u64()?;
        }
        Ok(h)
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("count");
        w.u64_value(self.count);
        w.key("sum");
        w.u64_value(self.sum);
        w.key("max");
        w.u64_value(self.max);
        w.key("mean");
        w.f64_value(self.mean());
        w.key("p50");
        w.u64_value(self.quantile(0.50));
        w.key("p99");
        w.u64_value(self.quantile(0.99));
        w.key("p999");
        w.u64_value(self.quantile(0.999));
        // Sparse [index, count] pairs; the bucket geometry (16 linear
        // sub-buckets per log2 group) makes the index self-describing.
        w.key("buckets");
        w.begin_array();
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c != 0 {
                w.begin_array();
                w.u64_value(idx as u64);
                w.u64_value(c);
                w.end_array();
            }
        }
        w.end_array();
        w.end_object();
    }
}

/// What a [`Section`] entry holds.
#[derive(Debug, Clone, PartialEq)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Hist(Box<Hist>),
    QHist(Box<QHist>),
}

/// A named group of metrics within a [`StatsReport`] (e.g. one per
/// node, plus machine-wide sections).
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    name: String,
    entries: Vec<(&'static str, Metric)>,
}

impl Section {
    /// Creates an empty section called `name`.
    pub fn new(name: impl Into<String>) -> Section {
        Section {
            name: name.into(),
            entries: Vec::new(),
        }
    }

    /// The section's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a monotonic counter.
    pub fn counter(&mut self, key: &'static str, v: u64) -> &mut Section {
        self.entries.push((key, Metric::Counter(v)));
        self
    }

    /// Adds a derived floating-point gauge (serialized with fixed
    /// 6-digit precision so equal inputs give byte-equal JSON).
    pub fn gauge(&mut self, key: &'static str, v: f64) -> &mut Section {
        self.entries.push((key, Metric::Gauge(v)));
        self
    }

    /// Adds a histogram snapshot.
    pub fn hist(&mut self, key: &'static str, h: Hist) -> &mut Section {
        self.entries.push((key, Metric::Hist(Box::new(h))));
        self
    }

    /// Adds a quantile-histogram snapshot.
    pub fn qhist(&mut self, key: &'static str, h: QHist) -> &mut Section {
        self.entries.push((key, Metric::QHist(Box::new(h))));
        self
    }

    /// Looks up a counter by key.
    pub fn get_counter(&self, key: &str) -> Option<u64> {
        self.entries.iter().find_map(|(k, m)| match m {
            Metric::Counter(v) if *k == key => Some(*v),
            _ => None,
        })
    }

    /// Looks up a gauge by key.
    pub fn get_gauge(&self, key: &str) -> Option<f64> {
        self.entries.iter().find_map(|(k, m)| match m {
            Metric::Gauge(v) if *k == key => Some(*v),
            _ => None,
        })
    }

    /// Looks up a quantile histogram by key.
    pub fn get_qhist(&self, key: &str) -> Option<&QHist> {
        self.entries.iter().find_map(|(k, m)| match m {
            Metric::QHist(h) if *k == key => Some(h.as_ref()),
            _ => None,
        })
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.key(&self.name);
        w.begin_object();
        for (k, m) in &self.entries {
            w.key(k);
            match m {
                Metric::Counter(v) => w.u64_value(*v),
                Metric::Gauge(v) => w.f64_value(*v),
                Metric::Hist(h) => h.write_json(w),
                Metric::QHist(h) => h.write_json(w),
            }
        }
        w.end_object();
    }
}

/// A complete metrics snapshot of one run: an ordered list of named
/// [`Section`]s, serializable as a single JSON object.
///
/// Reports are built exclusively from deterministic simulation state
/// (per-node ledgers, protocol counters, fault statistics) — never
/// from wall clocks or from quiescence-dependent values such as the
/// final scheduler cycle — so the same workload produces a byte-equal
/// report under every scheduler at any worker count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsReport {
    sections: Vec<Section>,
}

impl StatsReport {
    /// Creates an empty report.
    pub fn new() -> StatsReport {
        StatsReport::default()
    }

    /// Appends a section. Section order is part of the serialized
    /// form; builders must append in a deterministic order.
    pub fn push(&mut self, section: Section) {
        self.sections.push(section);
    }

    /// The sections, in insertion order.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Finds a section by name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name() == name)
    }

    /// Serializes the whole report as one compact JSON object.
    /// Byte-equal for equal reports.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        for s in &self.sections {
            s.write_json(&mut w);
        }
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;

    #[test]
    fn hist_buckets_by_log2() {
        let mut h = Hist::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 1); // 0
        assert_eq!(h.bucket(1), 1); // 1
        assert_eq!(h.bucket(2), 2); // 2, 3
        assert_eq!(h.bucket(3), 2); // 4, 7
        assert_eq!(h.bucket(4), 1); // 8
        assert_eq!(h.max(), 8);
    }

    #[test]
    fn hist_merge_is_order_independent() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        for v in 0..100u64 {
            if v % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 100);
    }

    #[test]
    fn qhist_quantiles_are_tight_and_merge_is_order_independent() {
        let mut h = QHist::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.quantile(1.0), 10_000);
        assert_eq!(h.quantile(0.0), 1);
        for (q, exact) in [(0.5, 5_000u64), (0.99, 9_900), (0.999, 9_990)] {
            let got = h.quantile(q);
            assert!(
                got >= exact && (got - exact) as f64 <= exact as f64 / 16.0 + 1.0,
                "q={q}: got {got}, exact {exact}"
            );
        }

        // Small values are exact.
        let mut s = QHist::new();
        for v in [0u64, 3, 3, 7] {
            s.record(v);
        }
        assert_eq!(s.quantile(0.5), 3);
        assert_eq!(s.quantile(1.0), 7);

        // Merge is element-wise, so order-independent.
        let mut a = QHist::new();
        let mut b = QHist::new();
        for v in 0..1000u64 {
            if v % 3 == 0 {
                a.record(v * v);
            } else {
                b.record(v * v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 1000);

        // Wire roundtrip.
        let mut w = ByteWriter::new();
        ab.encode(&mut w);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(QHist::decode(&mut r).unwrap(), ab);
        assert!(r.is_empty());
    }

    #[test]
    fn qhist_extremes_roundtrip() {
        let mut h = QHist::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.quantile(0.1), 0);
        assert_eq!(h.quantile(1.0), u64::MAX);
        let mut w = ByteWriter::new();
        h.encode(&mut w);
        let bytes = w.finish();
        assert_eq!(QHist::decode(&mut ByteReader::new(&bytes)).unwrap(), h);
    }

    #[test]
    fn report_json_is_valid_and_deterministic() {
        let build = || {
            let mut r = StatsReport::new();
            let mut s = Section::new("node0.cpu");
            s.counter("useful_cycles", 1000)
                .counter("traps", 7)
                .gauge("utilization", 2.0 / 3.0);
            let mut h = Hist::new();
            h.record(5);
            h.record(40);
            s.hist("latency", h);
            r.push(s);
            r
        };
        let a = build().to_json();
        let b = build().to_json();
        assert_eq!(a, b);
        assert!(validate_json(&a).is_ok(), "{a}");
        let r = build();
        assert_eq!(
            r.section("node0.cpu").unwrap().get_counter("traps"),
            Some(7)
        );
        assert!(
            (r.section("node0.cpu")
                .unwrap()
                .get_gauge("utilization")
                .unwrap()
                - 2.0 / 3.0)
                .abs()
                < 1e-12
        );
    }
}
