//! Minimal JSON emission and validation.
//!
//! The workspace builds fully offline with no external dependencies,
//! so exports are hand-assembled. [`JsonWriter`] keeps the assembly
//! honest (escaping, comma placement); [`validate_json`] is a strict
//! syntax checker the test suites run over every export so a malformed
//! trace can never ship silently.

use std::fmt::Write as _;

/// An append-only JSON assembler over a `String`.
///
/// The writer tracks comma placement per nesting level; the caller
/// supplies structure (`begin_object` / `key` / `value`) in document
/// order. Gauges are formatted with a fixed precision so equal inputs
/// produce byte-equal documents.
///
/// # Examples
///
/// ```
/// use april_obs::{validate_json, JsonWriter};
///
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("name");
/// w.str_value("stall_heavy");
/// w.key("cycles");
/// w.u64_value(580111);
/// w.end_object();
/// let doc = w.finish();
/// assert!(validate_json(&doc).is_ok());
/// assert_eq!(doc, r#"{"name":"stall_heavy","cycles":580111}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Per-level "needs a comma before the next item" flags.
    comma: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    fn pre_value(&mut self) {
        if let Some(c) = self.comma.last_mut() {
            if *c {
                self.out.push(',');
            }
            *c = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.comma.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        self.comma.pop();
        self.out.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.comma.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        self.comma.pop();
        self.out.push(']');
    }

    /// Writes an object key. The next call must write its value.
    pub fn key(&mut self, k: &str) {
        self.pre_value();
        write_escaped(&mut self.out, k);
        self.out.push(':');
        // The value that follows must not emit a comma of its own.
        if let Some(c) = self.comma.last_mut() {
            *c = false;
        }
    }

    /// Writes a string value.
    pub fn str_value(&mut self, s: &str) {
        self.pre_value();
        write_escaped(&mut self.out, s);
    }

    /// Writes an unsigned integer value.
    pub fn u64_value(&mut self, v: u64) {
        self.pre_value();
        let _ = write!(self.out, "{v}");
    }

    /// Writes a float with fixed 6-digit precision (deterministic:
    /// equal inputs yield byte-equal output). Non-finite values are
    /// not valid JSON and are clamped to 0.
    pub fn f64_value(&mut self, v: f64) {
        self.pre_value();
        let v = if v.is_finite() { v } else { 0.0 };
        let _ = write!(self.out, "{v:.6}");
    }

    /// Writes a boolean value.
    pub fn bool_value(&mut self, v: bool) {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Returns the assembled document.
    pub fn finish(self) -> String {
        debug_assert!(self.comma.is_empty(), "unbalanced JSON writer");
        self.out
    }
}

/// Escapes `s` as a JSON string literal (with quotes) onto `out`.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Strictly validates that `s` is one complete JSON value (RFC 8259
/// grammar; no trailing content). Returns the byte offset and a
/// message on the first error.
///
/// This is a syntax checker, not a parser: it builds no value tree, so
/// the equivalence tests can afford to run it over multi-megabyte
/// traces.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing content at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{} at byte {}", what, self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn lit(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.lit("true"),
            Some(b'f') => self.lit("false"),
            Some(b'n') => self.lit("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character")),
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected a fraction digit"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected an exponent digit"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "0",
            "-1.5e3",
            r#"{"a":[1,2,{"b":"c\n"}],"d":null,"e":true}"#,
            "  [1, 2, 3]  ",
            r#""é""#,
        ] {
            assert!(validate_json(doc).is_ok(), "{doc}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            r#"{"a"}"#,
            r#"{"a":}"#,
            "01",
            "1.",
            "nul",
            "[1] extra",
            "\"unterminated",
            "{\"a\":1,}",
        ] {
            assert!(validate_json(doc).is_err(), "{doc:?} should be rejected");
        }
    }

    #[test]
    fn writer_escapes_and_balances() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("s");
        w.str_value("line\n\"quote\"\\");
        w.key("arr");
        w.begin_array();
        w.u64_value(1);
        w.f64_value(0.5);
        w.bool_value(false);
        w.end_array();
        w.end_object();
        let doc = w.finish();
        assert!(validate_json(&doc).is_ok(), "{doc}");
        assert_eq!(
            doc,
            "{\"s\":\"line\\n\\\"quote\\\"\\\\\",\"arr\":[1,0.500000,false]}"
        );
    }
}
