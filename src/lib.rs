//! # april — reproduction of *APRIL: A Processor Architecture for
//! # Multiprocessing* (Agarwal, Lim, Kranz, Kubiatowicz; ISCA 1990)
//!
//! This facade re-exports the whole system. The pieces:
//!
//! * [`core`] — the APRIL processor: tagged words, the
//!   instruction set with full/empty-bit memory operations and
//!   `Jfull`/`Jempty`, four hardware task frames, the trap mechanism,
//!   and a cycle-accounted execution engine.
//! * [`mem`] — caches, the full-map directory coherence
//!   protocol, and word-addressed memory with full/empty bits.
//! * [`net`] — the k-ary n-cube packet-switched network.
//! * [`machine`] — the ALEWIFE machine (and the ideal
//!   zero-latency machine used for the paper's Table 3).
//! * [`runtime`] — the run-time software system:
//!   virtual threads, scheduling, futures, lazy task creation, trap
//!   handlers.
//! * [`mult`] — the Mul-T compiler (T-seq / Encore / APRIL
//!   targets) and the paper's four benchmarks.
//! * [`model`] — the Section 8 analytical utilization
//!   model.
//! * [`obs`] — the observability layer: structured event
//!   tracing (JSONL / Chrome `trace_event` exports) and the metrics
//!   registry snapshot, deterministic across all three schedulers.
//! * [`serve`] — simulation as a service: the april-serve daemon,
//!   its Unix-socket wire protocol (PROTOCOL.md), and snapshot warm
//!   starts that fork one registered checkpoint per sweep job.
//!
//! # Quick start
//!
//! ```
//! use april::mult::{compile, CompileOptions};
//! use april::machine::IdealMachine;
//! use april::runtime::{RtConfig, Runtime};
//!
//! let prog = compile(
//!     "(define (fib n)
//!        (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
//!      (define (main) (fib 10))",
//!     &CompileOptions::april(),
//! )?;
//! let machine = IdealMachine::new(4, 64 << 20, prog);
//! let mut rt = Runtime::new(machine, RtConfig { region_bytes: 16 << 20, ..RtConfig::default() });
//! let result = rt.run().expect("program completes");
//! assert_eq!(result.value.as_fixnum(), Some(55));
//! # Ok::<(), april::mult::CompileError>(())
//! ```

#![warn(missing_docs)]

pub use april_core as core;
pub use april_machine as machine;
pub use april_mem as mem;
pub use april_model as model;
pub use april_mult as mult;
pub use april_net as net;
pub use april_obs as obs;
pub use april_runtime as runtime;
pub use april_serve as serve;
